// Vectorized statevector kernels with runtime ISA dispatch.
//
// The StateVector methods in statevector.hpp are thin dispatchers over the
// free functions here: each kernel is the strided amplitude update of one
// gate shape, written planar (separate real/imag arithmetic) so the hot loop
// is fused multiply-adds over doubles instead of std::complex operator
// calls. Every kernel exists in a portable C++ variant and — on x86-64 — an
// AVX2+FMA intrinsics variant compiled per-function with
// __attribute__((target)), so the build needs no global -mavx2 and the
// binary still runs on pre-AVX2 machines. On AVX-512 hardware the k-qubit
// dense kernel additionally upgrades to a zmm-register matvec fed by
// hardware gather/scatter (the group index tables become loop-invariant
// index vectors). Dispatch is by the `Isa` argument;
// active_isa() picks the best variant the CPU supports once per process
// (override with QUTES_SIMD=portable, or force_isa() from tests/benches so
// both variants can be compared in one process).
//
// Structure fast paths: diagonal (Z/S/T/RZ/P and fused diagonal blocks) and
// antidiagonal/permutation (X/CX/MCX) matrices skip the dense 2x2/2^k matmul
// entirely — a diagonal gate is one complex multiply per amplitude and an
// antidiagonal gate is a scaled swap. Controlled kernels enumerate only the
// basis pairs whose control bits are all set (dim >> (controls+1) iterations
// instead of dim/2 with a mask test), which is what makes wide
// multi-controlled oracles (Grover's MCZ/MCX) cheap.
//
// Index math is hoisted out of the inner loops: the 1q kernels walk
// contiguous runs of 2^target amplitudes per block, and the k-qubit kernel
// precomputes the local-index -> scattered-bit-offset table once per call so
// the per-group work is gather, matvec, scatter.
//
// All kernels are OpenMP-parallel above a size threshold. Per-amplitude
// results never depend on the thread decomposition, so counts stay
// bit-identical at any thread count (a property the executor tests pin).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qutes::sim::kernels {

using cplx = std::complex<double>;

// ---- ISA dispatch -----------------------------------------------------------

enum class Isa {
  Portable,  ///< plain C++ (auto-vectorizable planar loops)
  Avx2,      ///< AVX2 + FMA intrinsics (x86-64 only)
  Avx512,    ///< AVX-512F/DQ: 1q paths shared with Avx2, k-qubit matvec on
             ///< zmm registers with hardware gather/scatter (x86-64 only)
};

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// True if this build/CPU can execute the variant (Portable always can).
[[nodiscard]] bool isa_available(Isa isa) noexcept;

/// Best available ISA, detected once per process. The environment variable
/// QUTES_SIMD=portable (or 0/off) forces Portable and QUTES_SIMD=avx2 caps
/// dispatch at AVX2 even on AVX-512 hardware; it is read at first use.
[[nodiscard]] Isa active_isa() noexcept;

/// Test/bench hook: pin active_isa() to `isa` (must be available) until
/// reset_isa(). Not for production code paths.
void force_isa(Isa isa) noexcept;
void reset_isa() noexcept;

// ---- structure classification ----------------------------------------------

/// Shape of a 2x2 unitary, used to pick a fast path. Detection is exact
/// (== 0.0): the gate constructors and fused-matrix products produce exact
/// zeros for Z/S/T/RZ/P/X and products thereof, and a false Dense verdict is
/// only a missed optimization, never an error.
enum class Kind1q { Dense, Diagonal, Antidiagonal };

/// Classify a row-major 2x2 matrix {m00, m01, m10, m11}.
[[nodiscard]] Kind1q classify_1q(const cplx* u) noexcept;

/// True if the row-major `block` x `block` matrix has exact zeros off the
/// diagonal (fused blocks of phase-type gates).
[[nodiscard]] bool is_diagonal_matrix(const cplx* matrix, std::size_t block) noexcept;

// ---- single-qubit kernels ---------------------------------------------------
// `amps` is the interleaved complex amplitude array of length `dim` (a power
// of two); `target` < log2(dim).

/// amps' = (I ⊗ u ⊗ I) amps for a dense 2x2 `u` (row-major, 4 entries).
void apply_1q_dense(Isa isa, cplx* amps, std::uint64_t dim, std::size_t target,
                    const cplx* u);

/// Diagonal fast path: amplitudes with the target bit 0 scale by d0, bit 1
/// by d1. d0 == 1 touches only half the state (Z/S/T/P and cphase shapes).
void apply_1q_diag(Isa isa, cplx* amps, std::uint64_t dim, std::size_t target,
                   cplx d0, cplx d1);

/// Antidiagonal fast path: amps[i0] <- a01 * amps[i1], amps[i1] <- a10 *
/// amps[i0]. X (a01 == a10 == 1) degenerates to a pure swap of runs.
void apply_1q_antidiag(Isa isa, cplx* amps, std::uint64_t dim, std::size_t target,
                       cplx a01, cplx a10);

// ---- controlled kernels -----------------------------------------------------
// Enumerate only the pairs with every control bit set: dim >> (num_controls
// + 1) iterations. `controls` need not be sorted; they must be distinct and
// distinct from `target`.

void apply_ctrl_1q_dense(Isa isa, cplx* amps, std::uint64_t dim,
                         const std::size_t* controls, std::size_t num_controls,
                         std::size_t target, const cplx* u);

void apply_ctrl_1q_diag(Isa isa, cplx* amps, std::uint64_t dim,
                        const std::size_t* controls, std::size_t num_controls,
                        std::size_t target, cplx d0, cplx d1);

void apply_ctrl_1q_antidiag(Isa isa, cplx* amps, std::uint64_t dim,
                            const std::size_t* controls, std::size_t num_controls,
                            std::size_t target, cplx a01, cplx a10);

// ---- k-qubit kernels --------------------------------------------------------
// Local bit j of the 2^k x 2^k row-major `matrix` acts on wire `targets[j]`
// (unsorted, distinct). 2 <= k <= 6; width-1 blocks belong in the 1q kernels.

void apply_kq_dense(Isa isa, cplx* amps, std::uint64_t dim,
                    const std::size_t* targets, std::size_t k, const cplx* matrix);

/// Diagonal k-qubit fast path: amps[base + offset[l]] *= diag[l]. One
/// multiply per amplitude, no gather/scatter scratch.
void apply_kq_diag(Isa isa, cplx* amps, std::uint64_t dim,
                   const std::size_t* targets, std::size_t k, const cplx* diag);

}  // namespace qutes::sim::kernels
