// Small dense complex matrices and the standard gate set.
//
// The simulator applies 2x2 (single-qubit) and 4x4 (two-qubit) unitaries;
// anything larger is expressed through controls on these primitives, or —
// for the runtime gate-fusion engine — through MatrixN, a dense 2^k x 2^k
// block assembled from several adjacent gates. The fixed-size matrices live
// in std::array so gate application stays allocation-free.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace qutes::sim {

using cplx = std::complex<double>;

/// Row-major 2x2 complex matrix: { m00, m01, m10, m11 }.
struct Matrix2 {
  std::array<cplx, 4> m{};

  [[nodiscard]] cplx operator()(std::size_t r, std::size_t c) const noexcept {
    return m[r * 2 + c];
  }

  /// Hermitian adjoint (conjugate transpose).
  [[nodiscard]] Matrix2 adjoint() const noexcept;

  /// Matrix product this * rhs.
  [[nodiscard]] Matrix2 operator*(const Matrix2& rhs) const noexcept;

  /// Max-norm distance to another matrix.
  [[nodiscard]] double distance(const Matrix2& rhs) const noexcept;

  /// True if U * U^dagger == I within tolerance.
  [[nodiscard]] bool is_unitary(double tol = 1e-12) const noexcept;
};

/// Row-major 4x4 complex matrix, basis order |q1 q0> = |00>,|01>,|10>,|11>
/// with q0 the low (first/target) qubit of the pair.
struct Matrix4 {
  std::array<cplx, 16> m{};

  [[nodiscard]] cplx operator()(std::size_t r, std::size_t c) const noexcept {
    return m[r * 4 + c];
  }

  [[nodiscard]] Matrix4 adjoint() const noexcept;
  [[nodiscard]] Matrix4 operator*(const Matrix4& rhs) const noexcept;
  [[nodiscard]] bool is_unitary(double tol = 1e-12) const noexcept;
};

/// Tensor product (kron) b (x) a: `a` acts on the low qubit, `b` on the high
/// qubit, matching the little-endian basis order of Matrix4.
[[nodiscard]] Matrix4 kron(const Matrix2& b, const Matrix2& a) noexcept;

/// Row-major dense 2^k x 2^k complex matrix over k qubits, the unit of work
/// of the runtime gate-fusion engine. Local bit j of a basis index is the
/// block's qubit j (little-endian, like the simulator). Heap-backed because
/// k is only known at runtime; bounded by kMaxQubits so gather/scatter
/// kernels can use fixed stack scratch.
class MatrixN {
public:
  /// Widest supported block; 2^6 = 64 amplitudes per gather group.
  static constexpr std::size_t kMaxQubits = 6;

  MatrixN() = default;  // empty (0 qubits); assign before use
  /// Identity over `num_qubits` qubits (1 <= num_qubits <= kMaxQubits).
  explicit MatrixN(std::size_t num_qubits);

  [[nodiscard]] static MatrixN identity(std::size_t num_qubits) {
    return MatrixN(num_qubits);
  }
  [[nodiscard]] static MatrixN from_1q(const Matrix2& u);
  [[nodiscard]] static MatrixN from_2q(const Matrix4& u);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const noexcept {
    return std::size_t{1} << num_qubits_;
  }
  [[nodiscard]] const cplx* data() const noexcept { return m_.data(); }

  [[nodiscard]] cplx operator()(std::size_t r, std::size_t c) const noexcept {
    return m_[r * dim() + c];
  }
  [[nodiscard]] cplx& at(std::size_t r, std::size_t c) noexcept {
    return m_[r * dim() + c];
  }

  /// Matrix product this * rhs (dimensions must match).
  [[nodiscard]] MatrixN operator*(const MatrixN& rhs) const;

  [[nodiscard]] MatrixN adjoint() const;

  /// Embed into a wider block: this matrix's qubit j becomes local bit
  /// `positions[j]` of the new `new_num_qubits`-qubit block; all other bits
  /// get the identity. Positions must be distinct and in range.
  [[nodiscard]] MatrixN embedded(std::size_t new_num_qubits,
                                 std::span<const std::size_t> positions) const;

  /// Max-norm distance to another matrix of the same width.
  [[nodiscard]] double distance(const MatrixN& rhs) const;

  /// True if U * U^dagger == I within tolerance.
  [[nodiscard]] bool is_unitary(double tol = 1e-10) const;

private:
  std::size_t num_qubits_ = 0;
  std::vector<cplx> m_;
};

// ---- standard gates -------------------------------------------------------
// Free functions (not globals) so there is no static-initialization order to
// worry about; all are constexpr-friendly in spirit but std::complex
// arithmetic is not constexpr until C++23, so they are plain inline.

namespace gates {

[[nodiscard]] Matrix2 I() noexcept;
[[nodiscard]] Matrix2 X() noexcept;
[[nodiscard]] Matrix2 Y() noexcept;
[[nodiscard]] Matrix2 Z() noexcept;
[[nodiscard]] Matrix2 H() noexcept;
[[nodiscard]] Matrix2 S() noexcept;
[[nodiscard]] Matrix2 Sdg() noexcept;
[[nodiscard]] Matrix2 T() noexcept;
[[nodiscard]] Matrix2 Tdg() noexcept;
[[nodiscard]] Matrix2 SX() noexcept;

/// Rotation about X by theta: exp(-i theta X / 2).
[[nodiscard]] Matrix2 RX(double theta) noexcept;
/// Rotation about Y by theta: exp(-i theta Y / 2).
[[nodiscard]] Matrix2 RY(double theta) noexcept;
/// Rotation about Z by theta: exp(-i theta Z / 2).
[[nodiscard]] Matrix2 RZ(double theta) noexcept;
/// Phase gate diag(1, e^{i lambda}).
[[nodiscard]] Matrix2 P(double lambda) noexcept;
/// Generic Euler-angle unitary U(theta, phi, lambda) (OpenQASM u3).
[[nodiscard]] Matrix2 U(double theta, double phi, double lambda) noexcept;

}  // namespace gates

}  // namespace qutes::sim
