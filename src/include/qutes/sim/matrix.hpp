// Small dense complex matrices and the standard gate set.
//
// The simulator applies 2x2 (single-qubit) and 4x4 (two-qubit) unitaries;
// anything larger is expressed through controls on these primitives. The
// matrices live in std::array so gate application stays allocation-free.
#pragma once

#include <array>
#include <complex>
#include <cstddef>

namespace qutes::sim {

using cplx = std::complex<double>;

/// Row-major 2x2 complex matrix: { m00, m01, m10, m11 }.
struct Matrix2 {
  std::array<cplx, 4> m{};

  [[nodiscard]] cplx operator()(std::size_t r, std::size_t c) const noexcept {
    return m[r * 2 + c];
  }

  /// Hermitian adjoint (conjugate transpose).
  [[nodiscard]] Matrix2 adjoint() const noexcept;

  /// Matrix product this * rhs.
  [[nodiscard]] Matrix2 operator*(const Matrix2& rhs) const noexcept;

  /// Max-norm distance to another matrix.
  [[nodiscard]] double distance(const Matrix2& rhs) const noexcept;

  /// True if U * U^dagger == I within tolerance.
  [[nodiscard]] bool is_unitary(double tol = 1e-12) const noexcept;
};

/// Row-major 4x4 complex matrix, basis order |q1 q0> = |00>,|01>,|10>,|11>
/// with q0 the low (first/target) qubit of the pair.
struct Matrix4 {
  std::array<cplx, 16> m{};

  [[nodiscard]] cplx operator()(std::size_t r, std::size_t c) const noexcept {
    return m[r * 4 + c];
  }

  [[nodiscard]] Matrix4 adjoint() const noexcept;
  [[nodiscard]] Matrix4 operator*(const Matrix4& rhs) const noexcept;
  [[nodiscard]] bool is_unitary(double tol = 1e-12) const noexcept;
};

/// Tensor product (kron) b (x) a: `a` acts on the low qubit, `b` on the high
/// qubit, matching the little-endian basis order of Matrix4.
[[nodiscard]] Matrix4 kron(const Matrix2& b, const Matrix2& a) noexcept;

// ---- standard gates -------------------------------------------------------
// Free functions (not globals) so there is no static-initialization order to
// worry about; all are constexpr-friendly in spirit but std::complex
// arithmetic is not constexpr until C++23, so they are plain inline.

namespace gates {

[[nodiscard]] Matrix2 I() noexcept;
[[nodiscard]] Matrix2 X() noexcept;
[[nodiscard]] Matrix2 Y() noexcept;
[[nodiscard]] Matrix2 Z() noexcept;
[[nodiscard]] Matrix2 H() noexcept;
[[nodiscard]] Matrix2 S() noexcept;
[[nodiscard]] Matrix2 Sdg() noexcept;
[[nodiscard]] Matrix2 T() noexcept;
[[nodiscard]] Matrix2 Tdg() noexcept;
[[nodiscard]] Matrix2 SX() noexcept;

/// Rotation about X by theta: exp(-i theta X / 2).
[[nodiscard]] Matrix2 RX(double theta) noexcept;
/// Rotation about Y by theta: exp(-i theta Y / 2).
[[nodiscard]] Matrix2 RY(double theta) noexcept;
/// Rotation about Z by theta: exp(-i theta Z / 2).
[[nodiscard]] Matrix2 RZ(double theta) noexcept;
/// Phase gate diag(1, e^{i lambda}).
[[nodiscard]] Matrix2 P(double lambda) noexcept;
/// Generic Euler-angle unitary U(theta, phi, lambda) (OpenQASM u3).
[[nodiscard]] Matrix2 U(double theta, double phi, double lambda) noexcept;

}  // namespace gates

}  // namespace qutes::sim
