// Stabilizer (Clifford/CHP) quantum simulator.
//
// Where StateVector stores 2^n amplitudes and the MPS stores per-cut bond
// tensors, a stabilizer state is represented by the group that fixes it: n
// commuting Pauli generators. Following Aaronson & Gottesman ("Improved
// simulation of stabilizer circuits"), the simulator keeps a 2n x (2n+1)
// binary phase tableau — n destabilizer rows, n stabilizer rows, and one
// scratch row for deterministic measurements. Row i encodes the Pauli
//
//   (-1)^{r_i} · prod_j  X_j^{x_ij} Z_j^{z_ij}   (x=z=1 means Y)
//
// with the x/z bits packed 64 per word, so the whole state of a 1000-qubit
// register is ~500 KB. Clifford gates (H, S, Sdg, X, Y, Z, CX, CZ, SWAP) are
// column updates over all 2n rows — O(n) per gate — and measurement is a
// tableau rank update: if some stabilizer anticommutes with Z_q the outcome
// is a fresh coin flip and that row is replaced (O(n^2) row sums), otherwise
// the outcome is determined and read off the scratch row. This is what blows
// the scenario ceiling open: GHZ/teleportation/swap-chain/error-correction
// circuits run at thousands of qubits, sizes no dense or tensor-network
// backend can touch (cf. Qiskit Aer's `stabilizer` method and Stim).
//
// Qubit ordering is little-endian (column j = qubit j), matching StateVector.
// The tableau cannot represent non-Clifford gates; the executor rejects them
// by name via BackendCapabilities::supported_gates before execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qutes/common/rng.hpp"
#include "qutes/sim/matrix.hpp"

namespace qutes::sim {

class Stabilizer {
public:
  /// |0...0> on `num_qubits` qubits: stabilizers Z_0..Z_{n-1}, destabilizers
  /// X_0..X_{n-1}, all phases +.
  explicit Stabilizer(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }

  // ---- Clifford gates (all O(n), column updates over the 2n rows) ----------

  void apply_h(std::size_t q);
  void apply_s(std::size_t q);
  void apply_sdg(std::size_t q);
  void apply_x(std::size_t q);
  void apply_y(std::size_t q);
  void apply_z(std::size_t q);
  void apply_cx(std::size_t control, std::size_t target);
  void apply_cz(std::size_t a, std::size_t b);
  void apply_swap(std::size_t a, std::size_t b);

  // ---- measurement ---------------------------------------------------------

  /// True when Z_q commutes with every stabilizer generator, i.e. the next
  /// measurement of `q` has a predetermined outcome (no rank update).
  [[nodiscard]] bool is_deterministic(std::size_t q) const;

  /// Projectively measure qubit `q` in the Z basis. The deterministic branch
  /// reads the outcome off row sums into the scratch row without consuming
  /// randomness; the random branch draws one bit from `rng`, replaces the
  /// anticommuting stabilizer (rank update), and collapses the state.
  int measure(std::size_t q, Rng& rng);

  /// Measure `q` and flip it back to |0> if it came up 1.
  void reset_qubit(std::size_t q, Rng& rng);

  // ---- queries -------------------------------------------------------------

  /// Stabilizer generator i as text, e.g. "+XZI" or "-YIZ" (sign, then one
  /// letter per qubit, qubit 0 first). For unit tests against the textbook
  /// conjugation tables.
  [[nodiscard]] std::string stabilizer_string(std::size_t i) const;
  [[nodiscard]] std::string destabilizer_string(std::size_t i) const;

  /// Contract the generator set into a dense statevector by projecting a
  /// fixed pseudo-random vector through (I + g_i)/2 for every stabilizer
  /// generator. Exact up to float roundoff and a global phase; guarded at
  /// kMaxDenseQubits (the point of the tableau is never to build this at
  /// n=1000). Feeds the differential harness's dense-reference comparisons.
  static constexpr std::size_t kMaxDenseQubits = 16;
  [[nodiscard]] std::vector<cplx> to_statevector() const;

  // ---- diagnostics ---------------------------------------------------------

  /// Tableau footprint in bytes (x + z words + phase bits). Feeds the
  /// stab.peak_bytes gauge.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Measurements performed so far (reset counts as one measurement).
  [[nodiscard]] std::size_t measurements() const noexcept { return measurements_; }

  /// Measurements that took the random (rank-update) branch.
  [[nodiscard]] std::size_t random_outcomes() const noexcept {
    return random_outcomes_;
  }

private:
  // Row layout: rows [0, n) are destabilizers, [n, 2n) stabilizers, row 2n
  // is the scratch accumulator for deterministic measurements. x_/z_ hold
  // one words_-long span per row; r_ is one phase bit per row.
  [[nodiscard]] std::uint64_t* x_row(std::size_t row) noexcept {
    return x_.data() + row * words_;
  }
  [[nodiscard]] const std::uint64_t* x_row(std::size_t row) const noexcept {
    return x_.data() + row * words_;
  }
  [[nodiscard]] std::uint64_t* z_row(std::size_t row) noexcept {
    return z_.data() + row * words_;
  }
  [[nodiscard]] const std::uint64_t* z_row(std::size_t row) const noexcept {
    return z_.data() + row * words_;
  }
  [[nodiscard]] bool x_bit(std::size_t row, std::size_t q) const noexcept {
    return (x_[row * words_ + q / 64] >> (q % 64)) & 1u;
  }
  [[nodiscard]] bool z_bit(std::size_t row, std::size_t q) const noexcept {
    return (z_[row * words_ + q / 64] >> (q % 64)) & 1u;
  }

  void check_qubit(std::size_t q, const char* what) const;

  /// Row h *= row i with exact phase tracking (the Aaronson–Gottesman
  /// "rowsum"): XORs the Pauli bits and recomputes r_h from the i-exponent
  /// of the per-qubit Pauli products, accumulated word-wise via popcounts.
  void rowsum(std::size_t h, std::size_t i);

  /// Render one row as "+XZIY..." text.
  [[nodiscard]] std::string row_string(std::size_t row) const;

  std::size_t num_qubits_ = 0;
  std::size_t words_ = 0;  ///< 64-bit words per row = ceil(n / 64)
  std::vector<std::uint64_t> x_, z_;
  std::vector<std::uint8_t> r_;
  std::size_t measurements_ = 0;
  std::size_t random_outcomes_ = 0;
};

}  // namespace qutes::sim
