// Exact mixed-state simulation via the density matrix.
//
// Complements the trajectory (Monte-Carlo) noise path: where the
// StateVector unravels channels stochastically, the DensityMatrix applies
// them exactly — rho -> sum_k K_k rho K_k^dagger — so tests can verify the
// trajectory average against the closed-form channel, and noise experiments
// (E4) can report exact fidelities instead of sampled ones.
//
// Implementation note: rho over n qubits is stored flat as a 2n-qubit
// "vector" rho_{ij} with row index i in the low n bits and column index j
// in the high n bits. A unitary U on qubit q then acts as U on (virtual)
// qubit q and conj(U) on virtual qubit q + n, which lets every kernel reuse
// the strided single-qubit update shape.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "qutes/common/rng.hpp"
#include "qutes/sim/matrix.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::sim {

class DensityMatrix {
public:
  /// Hard qubit ceiling: rho has 4^n entries, so 13 qubits is already 1 GiB.
  static constexpr std::size_t kMaxQubits = 13;

  /// |0...0><0...0| on `num_qubits` qubits (1..kMaxQubits). Throws
  /// SimulationError naming the limit when the register is too wide or the
  /// allocation itself fails.
  explicit DensityMatrix(std::size_t num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_statevector(const StateVector& psi);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::uint64_t dim() const noexcept { return dim_; }

  /// Element <i| rho |j>.
  [[nodiscard]] cplx element(std::uint64_t row, std::uint64_t column) const;

  // ---- evolution -------------------------------------------------------------

  /// rho -> U rho U^dagger for a single-qubit U on `target`.
  void apply_1q(const Matrix2& u, std::size_t target);

  /// Controlled/multi-controlled single-qubit unitary.
  void apply_multi_controlled_1q(const Matrix2& u,
                                 std::span<const std::size_t> controls,
                                 std::size_t target);

  /// SWAP two qubits.
  void apply_swap(std::size_t a, std::size_t b);

  /// Exact Kraus channel on one qubit: rho -> sum_k K_k rho K_k^dagger.
  /// Completeness (sum K^dagger K = I) is checked to 1e-9.
  void apply_channel(std::span<const Matrix2> kraus, std::size_t target);

  // Convenience channels (exact counterparts of qutes::sim noise.hpp).
  void apply_depolarizing(std::size_t target, double p);
  void apply_bit_flip(std::size_t target, double p);
  void apply_phase_flip(std::size_t target, double p);
  void apply_amplitude_damping(std::size_t target, double gamma);
  void apply_phase_damping(std::size_t target, double gamma);

  // ---- measurement -------------------------------------------------------------

  /// P(qubit = 1) = Tr(P1 rho).
  [[nodiscard]] double probability_one(std::size_t qubit) const;

  /// Diagonal of rho: the outcome distribution over basis states.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Projective measurement with collapse; returns 0/1.
  int measure(std::size_t qubit, Rng& rng);

  // ---- diagnostics ----------------------------------------------------------------

  /// Tr(rho) — should stay 1.
  [[nodiscard]] double trace() const;

  /// Tr(rho^2) — 1 for pure states, 1/2^n for the maximally mixed state.
  [[nodiscard]] double purity() const;

  /// <psi| rho |psi> — fidelity against a pure reference state.
  [[nodiscard]] double fidelity(const StateVector& psi) const;

  /// True if rho is Hermitian within `tol` (sanity invariant).
  [[nodiscard]] bool is_hermitian(double tol = 1e-9) const;

private:
  /// Apply u to the row index bit `q` (and nothing to columns).
  void apply_to_rows(const Matrix2& u, std::size_t q,
                     std::span<const std::size_t> controls);
  /// Apply conj(u) to the column index bit `q`.
  void apply_to_columns(const Matrix2& u, std::size_t q,
                        std::span<const std::size_t> controls);

  std::size_t num_qubits_;
  std::uint64_t dim_;
  std::vector<cplx> rho_;  // rho_[row + dim_ * column]
};

}  // namespace qutes::sim
