// Stochastic (Monte-Carlo trajectory) noise channels for the state-vector
// simulator.
//
// A dense state-vector cannot represent mixed states, so channels are
// unravelled per-trajectory: each application samples one Kraus branch and
// applies it as a (renormalized) unitary/projection. Averaged over shots
// this reproduces the channel exactly — the standard "quantum trajectory"
// technique used by Aer's statevector noise path.
#pragma once

#include <cstddef>

#include "qutes/common/rng.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::sim {

/// Per-gate noise parameters. Probabilities must each lie in [0, 1].
struct NoiseModel {
  /// Symmetric depolarizing probability applied after every 1-qubit gate.
  double depolarizing_1q = 0.0;
  /// Depolarizing probability applied to both qubits after a 2-qubit gate.
  double depolarizing_2q = 0.0;
  /// Probability a measurement result is reported flipped.
  double readout_error = 0.0;
  /// Amplitude damping (T1 relaxation) probability per gate.
  double amplitude_damping = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 || readout_error > 0.0 ||
           amplitude_damping > 0.0;
  }
};

/// Apply one depolarizing event to `qubit` with probability `p`: with p/3
/// each, an X, Y, or Z error.
void apply_depolarizing(StateVector& sv, std::size_t qubit, double p, Rng& rng);

/// Apply a bit-flip channel: X with probability `p`.
void apply_bit_flip(StateVector& sv, std::size_t qubit, double p, Rng& rng);

/// Apply a phase-flip channel: Z with probability `p`.
void apply_phase_flip(StateVector& sv, std::size_t qubit, double p, Rng& rng);

/// Amplitude-damping trajectory with damping parameter `gamma`: the qubit
/// decays toward |0> (Kraus branch chosen by the qubit's excited
/// population).
void apply_amplitude_damping(StateVector& sv, std::size_t qubit, double gamma, Rng& rng);

/// Flip a classical measurement outcome with probability `p`.
[[nodiscard]] int apply_readout_error(int outcome, double p, Rng& rng);

}  // namespace qutes::sim
