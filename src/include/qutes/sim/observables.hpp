// Pauli-string observables: <psi| P |psi> for P a tensor product of
// I/X/Y/Z. The standard measurement post-processing used throughout
// variational and verification workflows; here it backs the noise studies
// and gives tests a richer oracle than single-qubit <Z>.
#pragma once

#include <string>

#include "qutes/sim/statevector.hpp"

namespace qutes::sim {

/// Expectation of the Pauli string over the state. `pauli` is MSB-first
/// (its first character acts on qubit n-1, matching bitstring rendering)
/// and must have exactly num_qubits() characters from {I, X, Y, Z}.
/// The input state is not modified.
[[nodiscard]] double expectation_pauli(const StateVector& state,
                                       const std::string& pauli);

}  // namespace qutes::sim
