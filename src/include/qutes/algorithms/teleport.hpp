// Single-qubit quantum teleportation with classically-conditioned
// corrections — the canonical exercise of mid-circuit measurement + c_if,
// and the building block behind the entanglement-swap chain.
#pragma once

#include <cstdint>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Build the 3-qubit teleport circuit. The message qubit (q0) is prepared
/// with U(theta, phi, lambda); after the protocol q2 carries that state.
[[nodiscard]] circ::QuantumCircuit build_teleport_circuit(double theta, double phi,
                                                          double lambda);

/// Run once and return the fidelity of the received qubit with the sent
/// state (exactly 1 on a noiseless simulator).
[[nodiscard]] double run_teleport_fidelity(double theta, double phi, double lambda,
                                           std::uint64_t seed = 7);

}  // namespace qutes::algo
