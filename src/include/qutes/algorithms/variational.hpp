// Unified variational driver — the hybrid quantum-classical loop behind VQE
// and QAOA, rebuilt on symbolic circuit parameters (circ::Param).
//
// The problem is stated once as an *unbound* ansatz plus an observable; the
// optimizer never rebuilds the circuit. Each objective evaluation is a cheap
// `bind` of the prepared ansatz (the compilation pipeline, when one is
// supplied, runs exactly once on the symbolic circuit — symbolic angles
// survive every pass), and gradients come from the exact two-term
// parameter-shift rule rather than finite differences. This mirrors the
// qutesd service path, where a VQE sweep is one compile and N binds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "qutes/algorithms/qaoa.hpp"
#include "qutes/algorithms/vqe.hpp"
#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/pass_manager.hpp"

namespace qutes::algo {

/// A variational optimization problem: minimize (or maximize)
/// <psi(theta)| H |psi(theta)> over the ansatz parameters.
struct VariationalProblem {
  /// Parameterized ansatz (unbound circ::Param angles). A fully concrete
  /// circuit is rejected by minimize() — there is nothing to optimize.
  circ::QuantumCircuit ansatz;
  Hamiltonian hamiltonian;
  /// Starting point, one value per ansatz parameter (declaration order).
  std::vector<double> initial_parameters;
  /// Maximize instead of minimize (QAOA's expected cut).
  bool maximize = false;
};

struct MinimizeOptions {
  std::size_t max_iterations = 300;
  /// Adam step size.
  double learning_rate = 0.1;
  /// Stop when the gradient infinity-norm drops below this.
  double tolerance = 1e-7;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Optional compilation pipeline, run ONCE on the unbound ansatz before
  /// the first evaluation (nullptr = evaluate the ansatz as given).
  const circ::PassManager* pipeline = nullptr;
};

struct MinimizeResult {
  double value = 0.0;  ///< final objective (<H> at `parameters`)
  std::vector<double> parameters;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;  ///< statevector evolutions performed
  bool converged = false;       ///< gradient norm fell below tolerance
  /// Objective value after each iteration (iterations + 1 entries,
  /// starting with the initial point).
  std::vector<double> history;
};

/// <H> at one binding of the ansatz (exact statevector expectation). The
/// binding length must match ansatz.num_parameters().
[[nodiscard]] double expectation(const circ::QuantumCircuit& ansatz,
                                 const Hamiltonian& hamiltonian,
                                 std::span<const double> parameters);

/// Exact gradient of expectation() by the two-term parameter-shift rule
/// (f'(t) = [f(t + pi/2) - f(t - pi/2)] / 2 per symbolic occurrence, summed
/// over occurrences for shared parameters). Supported symbolic gates: rx,
/// ry, rz, p, cp, mcp, u (all have two-eigenvalue generators). A symbolic
/// crz is rejected — its generator has eigenvalues {0, +-1/2}, so the
/// two-term rule does not apply; decompose to rz/cx first.
[[nodiscard]] std::vector<double> parameter_shift_gradient(
    const circ::QuantumCircuit& ansatz, const Hamiltonian& hamiltonian,
    std::span<const double> parameters);

/// Adam descent on the parameter-shift gradient. Deterministic: no
/// randomness beyond what the caller baked into initial_parameters.
[[nodiscard]] MinimizeResult minimize(const VariationalProblem& problem,
                                      MinimizeOptions options = {});

// ---- symbolic ansatz builders ----------------------------------------------

/// Hardware-efficient RY ansatz as an *unbound* circuit: parameters
/// t0..t{n*(layers+1)-1} in the same order the concrete build_ry_ansatz
/// overload consumes them.
[[nodiscard]] circ::QuantumCircuit build_ry_ansatz(std::size_t num_qubits,
                                                   std::size_t layers);

/// The p-layer QAOA MaxCut circuit as an *unbound* circuit: parameters
/// g0..g{p-1} then b0..b{p-1} in the [gammas | betas] layout of run_qaoa.
/// Note b{l} is the raw RX mixer angle (2*beta of the concrete
/// build_qaoa_circuit overload) — a symbolic angle cannot carry the 2x
/// arithmetic.
[[nodiscard]] circ::QuantumCircuit build_qaoa_ansatz(
    const MaxCutInstance& instance, std::size_t layers);

/// The MaxCut cost observable: sum over edges of 0.5 (I - Z_u Z_v), so
/// <H> is the expected cut (maximize it).
[[nodiscard]] Hamiltonian maxcut_hamiltonian(const MaxCutInstance& instance);

}  // namespace qutes::algo
