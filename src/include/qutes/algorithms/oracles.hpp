// Oracle constructions shared by the search/query algorithms.
//
// Two families:
//  * phase oracles  — flip the sign of marked basis states (Grover);
//  * bit oracles    — XOR f(x) into an output qubit (Deutsch-Jozsa,
//    Bernstein-Vazirani).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Phase-flip the single basis state |value> of `qubits`: X-conjugated MCZ.
void append_phase_oracle_value(circ::QuantumCircuit& circuit,
                               std::span<const std::size_t> qubits,
                               std::uint64_t value);

/// Phase-flip every state listed in `values` (sequential value oracles;
/// exact, O(|values| * n)).
void append_phase_oracle_values(circ::QuantumCircuit& circuit,
                                std::span<const std::size_t> qubits,
                                std::span<const std::uint64_t> values);

/// Bit oracle for f(x) = mask . x (mod 2) (inner-product / parity family —
/// the balanced functions used by Deutsch-Jozsa and Bernstein-Vazirani):
/// CX from every mask bit into `output`.
void append_parity_bit_oracle(circ::QuantumCircuit& circuit,
                              std::span<const std::size_t> inputs, std::size_t output,
                              std::uint64_t mask);

/// Bit oracle for constant f: f == 1 applies X(output), f == 0 nothing.
void append_constant_bit_oracle(circ::QuantumCircuit& circuit, std::size_t output,
                                bool value);

/// Bit oracle from an explicit truth table (size 2^|inputs|): one
/// multi-controlled X per 1-entry. Exponential in general — intended for
/// tests and small registers.
void append_truth_table_bit_oracle(circ::QuantumCircuit& circuit,
                                   std::span<const std::size_t> inputs,
                                   std::size_t output,
                                   const std::vector<bool>& truth_table);

/// Random balanced truth table over n inputs (exactly 2^{n-1} ones),
/// deterministic in `seed`.
[[nodiscard]] std::vector<bool> random_balanced_truth_table(std::size_t num_inputs,
                                                            std::uint64_t seed);

}  // namespace qutes::algo
