// Grover-backed database operations — the paper's future-work items
// ("generalizing Grover's algorithm for database operations governed by
// arbitrary filter functions" and "native operations for calculating the
// maximum and minimum of a set"), implemented here.
//
// A QuantumDatabase loads a classical table into a value register entangled
// with an index register (QROM-style multiplexed loads, the same
// construction the substring search uses), then amplifies indices whose
// value satisfies a filter:
//   * equality   (value == key)
//   * threshold  (value < bound)  — the comparator behind min-finding
// Minimum/maximum finding runs the Durr-Hoyer / BBHT adaptive scheme on top
// of the threshold filter: repeatedly amplify "strictly better than the
// best seen", with exponentially growing random iteration counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "qutes/algorithms/grover.hpp"
#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Phase-flip every basis state |x> of `qubits` with x < bound (strict,
/// unsigned). O(n) multi-controlled-Z prefix oracles. bound == 0 marks
/// nothing; bound >= 2^n marks everything (rejected: use a smaller bound).
void append_less_than_oracle(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> qubits,
                             std::uint64_t bound);

class QuantumDatabase {
public:
  /// Table of unsigned entries; value register width = bits of the largest.
  explicit QuantumDatabase(std::vector<std::uint64_t> values);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t index_qubits() const noexcept { return index_bits_; }
  [[nodiscard]] std::size_t value_qubits() const noexcept { return value_bits_; }
  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept {
    return values_;
  }

  /// Search circuit for entries equal to `key`; `iterations` 0 = optimal
  /// (computed from the classical match count, as the DSL runtime does).
  [[nodiscard]] circ::QuantumCircuit build_equal_circuit(
      std::uint64_t key, std::size_t iterations = 0) const;

  /// Search circuit for entries strictly below `bound` with an explicit
  /// iteration count (callers doing adaptive search pick their own counts).
  [[nodiscard]] circ::QuantumCircuit build_less_than_circuit(
      std::uint64_t bound, std::size_t iterations) const;

  /// Run the equality search; `hit` is classically verified.
  [[nodiscard]] GroverResult run_equal(std::uint64_t key, std::uint64_t seed = 7,
                                       std::size_t iterations = 0) const;

private:
  void append_load(circ::QuantumCircuit& circuit,
                   std::span<const std::size_t> index,
                   std::span<const std::size_t> value,
                   std::uint64_t pad_value) const;
  [[nodiscard]] circ::QuantumCircuit build_filter_circuit(
      std::uint64_t pad_value, std::size_t iterations,
      const std::function<void(circ::QuantumCircuit&,
                               std::span<const std::size_t>)>& oracle) const;

  std::vector<std::uint64_t> values_;
  std::size_t index_bits_ = 0;
  std::size_t value_bits_ = 0;
};

struct ExtremumResult {
  std::uint64_t value = 0;
  std::uint64_t index = 0;
  std::size_t oracle_calls = 0;    ///< total Grover iterations across rounds
  std::size_t grover_rounds = 0;   ///< circuit executions
  bool exact = false;              ///< classically verified optimum
};

/// Durr-Hoyer quantum minimum over a classical table.
[[nodiscard]] ExtremumResult find_minimum(std::span<const std::uint64_t> values,
                                          std::uint64_t seed = 7);

/// Maximum via min over complemented values.
[[nodiscard]] ExtremumResult find_maximum(std::span<const std::uint64_t> values,
                                          std::uint64_t seed = 7);

}  // namespace qutes::algo
