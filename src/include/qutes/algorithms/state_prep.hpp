// Amplitude state preparation (the substrate behind Qutes superposition
// literals like `[0, 3]q`).
//
// Implements the multiplexed-RY construction (Shende-Bullock-Markov style,
// restricted to non-negative real amplitudes): processing qubits MSB-down,
// each step applies RY rotations controlled on every assignment of the
// already-prepared higher bits. Multi-controlled RY is emitted as the
// standard MCX-conjugated half-angle pair, so the output circuit uses only
// gates the IR already knows. Cost is O(2^n) rotations — exact and fine for
// the small registers DSL literals create.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Prepare the state with Pr(basis i) = probabilities[i] (all amplitudes
/// chosen real non-negative). `probabilities` must have length 2^|qubits|
/// and sum to 1 (checked to 1e-9). Qubits must start in |0...0>.
void append_state_prep(circ::QuantumCircuit& circuit,
                       std::span<const std::size_t> qubits,
                       std::span<const double> probabilities);

/// Prepare the equal superposition of the listed (distinct) basis values.
void append_uniform_superposition(circ::QuantumCircuit& circuit,
                                  std::span<const std::size_t> qubits,
                                  std::span<const std::uint64_t> values);

}  // namespace qutes::algo
