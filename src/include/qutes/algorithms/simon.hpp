// Simon's algorithm: recover a hidden XOR period s (f(x) = f(x ^ s)) with
// O(n) quantum queries, versus exponentially many classically. Rounds out
// the query-complexity family (Deutsch-Jozsa, Bernstein-Vazirani) the DSL's
// algorithm library exposes.
//
// The oracle computes f(x) = min(x, x ^ s) into an n-qubit output register
// (a canonical 2-to-1 function with period s), loaded QROM-style. Each
// quantum round yields a y with y . s = 0 (mod 2); rounds accumulate until
// the equations have rank n-1, then s is the unique nonzero solution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Incremental GF(2) row space: tracks the rank of the collected equations.
class Gf2System {
public:
  /// Insert an equation; returns true if it increased the rank.
  bool add(std::uint64_t equation);
  [[nodiscard]] std::size_t rank() const noexcept { return rows_.size(); }
  /// All s in (0, 2^n) with row . s == 0 for every stored row.
  [[nodiscard]] std::vector<std::uint64_t> nullspace(std::size_t n) const;

private:
  std::vector<std::uint64_t> rows_;  // reduced rows, distinct leading bits
};

/// One Simon round: H^n, oracle, H^n, measure the input register.
[[nodiscard]] circ::QuantumCircuit build_simon_circuit(std::size_t num_bits,
                                                       std::uint64_t secret);

struct SimonResult {
  std::uint64_t recovered = 0;
  std::size_t quantum_queries = 0;
  bool success = false;
};

/// Full driver: repeat rounds until rank n-1 (or the query budget runs
/// out), then solve. `secret` must be nonzero and fit in `num_bits`.
[[nodiscard]] SimonResult run_simon(std::size_t num_bits, std::uint64_t secret,
                                    std::uint64_t seed = 7);

}  // namespace qutes::algo
