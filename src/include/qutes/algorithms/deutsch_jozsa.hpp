// Deutsch-Jozsa: decide constant-vs-balanced with a single oracle query
// (paper Section 5 showcases this in Qutes).
//
// The promise function f : {0,1}^n -> {0,1} is supplied either as a parity
// mask (balanced), a constant, or an arbitrary truth table. The circuit
// measures all-zeros on the input register iff f is constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

enum class DjOracleKind { Constant0, Constant1, BalancedParity, TruthTable };

struct DjOracle {
  DjOracleKind kind = DjOracleKind::Constant0;
  std::uint64_t mask = 0;           ///< BalancedParity: f(x) = mask . x, mask != 0
  std::vector<bool> truth_table;    ///< TruthTable: size 2^n

  static DjOracle constant(bool value) {
    return {value ? DjOracleKind::Constant1 : DjOracleKind::Constant0, 0, {}};
  }
  static DjOracle balanced(std::uint64_t mask) {
    return {DjOracleKind::BalancedParity, mask, {}};
  }
  static DjOracle table(std::vector<bool> tt) {
    return {DjOracleKind::TruthTable, 0, std::move(tt)};
  }
};

/// Build the n-input Deutsch-Jozsa circuit: inputs in register "x",
/// the |-> ancilla in register "y", measurement of x into "c".
[[nodiscard]] circ::QuantumCircuit build_deutsch_jozsa_circuit(std::size_t num_inputs,
                                                               const DjOracle& oracle);

struct DjResult {
  bool constant = false;           ///< the algorithm's verdict
  std::uint64_t measured = 0;      ///< raw input-register measurement
  std::size_t oracle_calls = 1;    ///< always 1 — the quantum advantage
};

/// Run the algorithm once (it is deterministic for promise-satisfying f).
[[nodiscard]] DjResult run_deutsch_jozsa(std::size_t num_inputs, const DjOracle& oracle,
                                         std::uint64_t seed = 7);

/// Classical deterministic baseline: probe f until the constant/balanced
/// question is settled; returns the number of queries used (worst case
/// 2^{n-1} + 1).
[[nodiscard]] std::size_t classical_deutsch_jozsa_queries(std::size_t num_inputs,
                                                          const DjOracle& oracle);

}  // namespace qutes::algo
