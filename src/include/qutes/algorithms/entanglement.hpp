// Entanglement primitives: Bell pairs and the entanglement-swapping chain
// the paper showcases as "entanglement propagation" (Section 5, after Zangi
// et al. 2023).
//
// The chain starts from L adjacent Bell pairs on 2L qubits; Bell
// measurements on each interior pair, with classically-conditioned X/Z
// corrections, teleport the entanglement outward until the two endpoint
// qubits — which never interacted — share a Bell state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Append H + CX preparing (|00> + |11>)/sqrt(2) on (a, b).
void append_bell_pair(circ::QuantumCircuit& circuit, std::size_t a, std::size_t b);

/// GHZ over any number of qubits: H on the first, CX chain down the rest.
void append_ghz(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits);

/// W state (|10..0> + |01..0> + ... + |0..01>)/sqrt(n) via amplitude state
/// preparation. The other entangled-state family: GHZ loses all
/// entanglement when one qubit is measured; W keeps it.
void append_w_state(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits);

/// Build the full propagation circuit over `num_links` Bell pairs
/// (2 * num_links qubits). Interior qubits are Bell-measured into classical
/// bits; corrections are applied to the far endpoint via c_if. num_links >= 1.
[[nodiscard]] circ::QuantumCircuit build_entanglement_chain_circuit(
    std::size_t num_links);

struct ChainResult {
  /// <Z Z> correlator between the endpoints after propagation (1 = Bell).
  double zz_correlation = 0.0;
  /// Fidelity of the endpoint pair with the ideal Bell state Phi+.
  double bell_fidelity = 0.0;
  std::size_t chain_qubits = 0;
};

/// Run one trajectory and verify the endpoints: computes the endpoint ZZ
/// correlator and the fidelity with Phi+ (tracing is unnecessary because all
/// interior qubits have collapsed).
[[nodiscard]] ChainResult run_entanglement_chain(std::size_t num_links,
                                                 std::uint64_t seed = 7);

}  // namespace qutes::algo
