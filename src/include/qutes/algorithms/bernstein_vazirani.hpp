// Bernstein-Vazirani: recover a hidden parity mask with one oracle query
// (a natural extension of the paper's Deutsch-Jozsa showcase; implemented
// as part of the algorithm library the DSL exposes).
#pragma once

#include <cstddef>
#include <cstdint>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Build the circuit: H^n, parity oracle for `secret`, H^n, measure.
[[nodiscard]] circ::QuantumCircuit build_bernstein_vazirani_circuit(
    std::size_t num_inputs, std::uint64_t secret);

/// One-query recovery of `secret`. Deterministic on a noiseless simulator.
[[nodiscard]] std::uint64_t run_bernstein_vazirani(std::size_t num_inputs,
                                                   std::uint64_t secret,
                                                   std::uint64_t seed = 7);

}  // namespace qutes::algo
