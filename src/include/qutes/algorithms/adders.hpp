// Quantum register adders — the circuits behind Qutes' `quint + quint` and
// `quint += int` operations ("superposition addition" in the paper).
//
// Two constructions with opposite tradeoffs (bench_adders quantifies them):
//  * Draper (quant-ph/0008033): QFT-based, b += a in-place with zero
//    ancillas, O(n^2) controlled phases.
//  * Cuccaro (quant-ph/0410184): ripple-carry MAJ/UMA chain, one clean
//    ancilla, O(n) CX/CCX — the "hardware-friendly" baseline.
// All arithmetic is modulo 2^n where n = |b|.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// b += a (mod 2^|b|), Draper. Registers must be disjoint; |a| <= |b|.
void append_draper_adder(circ::QuantumCircuit& circuit, std::span<const std::size_t> a,
                         std::span<const std::size_t> b);

/// b -= a (mod 2^|b|), Draper (inverse phases).
void append_draper_subtractor(circ::QuantumCircuit& circuit,
                              std::span<const std::size_t> a,
                              std::span<const std::size_t> b);

/// b += k (mod 2^|b|) for a classical constant: pure phase kicks inside the
/// QFT frame, no extra register at all.
void append_draper_add_const(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> b, std::uint64_t k);

/// b -= k (mod 2^|b|).
void append_draper_sub_const(circ::QuantumCircuit& circuit,
                             std::span<const std::size_t> b, std::uint64_t k);

/// b += a (mod 2^n), Cuccaro ripple-carry. |a| == |b| == n; `ancilla` must be
/// a clean |0> qubit distinct from both registers (returned clean).
void append_cuccaro_adder(circ::QuantumCircuit& circuit, std::span<const std::size_t> a,
                          std::span<const std::size_t> b, std::size_t ancilla);

/// b -= a via the exact inverse of the Cuccaro chain.
void append_cuccaro_subtractor(circ::QuantumCircuit& circuit,
                               std::span<const std::size_t> a,
                               std::span<const std::size_t> b, std::size_t ancilla);

/// Negate a register two's-complement style: b := -b (mod 2^n).
void append_negate(circ::QuantumCircuit& circuit, std::span<const std::size_t> b);

/// b *= k (mod 2^|b|) for an odd classical constant, via shift-and-add on a
/// scratch copy is not needed: repeated Draper constant additions of
/// k * 2^i conditioned on bit i of the original value require a copy, so
/// this helper instead multiplies by composing controlled constant adds
/// into `out` (|out| clean qubits): out += b * k.
void append_mul_const_accumulate(circ::QuantumCircuit& circuit,
                                 std::span<const std::size_t> b,
                                 std::span<const std::size_t> out, std::uint64_t k);

}  // namespace qutes::algo
