// Grover search, including the quantum substring search the Qutes `in`
// operator compiles to (paper Section 5, Figure listing).
//
// The substring machinery follows the window-superposition construction:
//   1. an index register of l = ceil(log2 P) qubits is put into uniform
//      superposition over candidate positions (P = n - m + 1);
//   2. a window-load unitary W writes text[i .. i+m) into an m-qubit window
//      register, entangled with each index i (positions i >= P load the
//      bitwise complement of the pattern so they can never match);
//   3. the oracle phase-flips states whose window equals the pattern;
//   4. W^dagger uncomputes the window and the standard diffusion operator
//      acts on the index register alone.
// After ~ pi/4 * sqrt(2^l / M) iterations a measurement of the index
// register yields a match position with high probability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/common/rng.hpp"

namespace qutes::algo {

/// Standard diffusion (inversion about the mean) on `qubits`:
/// H^n X^n MCZ X^n H^n.
void append_diffusion(circ::QuantumCircuit& circuit,
                      std::span<const std::size_t> qubits);

/// floor(pi/4 * sqrt(N / M)) with a minimum of 1; the optimal Grover
/// iteration count for M marked states out of N.
[[nodiscard]] std::size_t optimal_grover_iterations(std::uint64_t search_space,
                                                    std::uint64_t num_marked);

/// Build a complete Grover circuit over `num_qubits` qubits that marks the
/// listed basis states, with `iterations` rounds (0 = use the optimum), and
/// a final measurement of every qubit.
[[nodiscard]] circ::QuantumCircuit build_grover_circuit(
    std::size_t num_qubits, std::span<const std::uint64_t> marked,
    std::size_t iterations = 0);

/// Result of a Grover run.
struct GroverResult {
  std::uint64_t outcome = 0;      ///< measured basis state / position
  bool hit = false;               ///< outcome is genuinely marked / a match
  double success_probability = 0; ///< exact P(measuring a marked state)
  std::size_t iterations = 0;
  std::size_t oracle_calls = 0;
};

/// Run Grover over the marked-value set and report the measured outcome plus
/// the exact success probability (read off the pre-measurement state).
[[nodiscard]] GroverResult run_grover(std::size_t num_qubits,
                                      std::span<const std::uint64_t> marked,
                                      std::uint64_t seed = 7,
                                      std::size_t iterations = 0);

// ---- substring search -------------------------------------------------------

/// Quantum substring search of `pattern` in `text` (both '0'/'1' strings).
class SubstringSearch {
public:
  SubstringSearch(std::string text, std::string pattern);

  /// Positions where the pattern classically matches (ground truth).
  [[nodiscard]] const std::vector<std::uint64_t>& matches() const noexcept {
    return matches_;
  }

  [[nodiscard]] std::size_t index_qubits() const noexcept { return index_bits_; }
  [[nodiscard]] std::size_t total_qubits() const noexcept {
    return index_bits_ + pattern_.size();
  }

  /// The full search circuit: prep, `iterations` Grover rounds (0 = optimal),
  /// and measurement of the index register.
  [[nodiscard]] circ::QuantumCircuit build_circuit(std::size_t iterations = 0) const;

  /// Execute and report the measured position. `hit` is set by classically
  /// verifying the reported position — exactly what the Qutes runtime does
  /// for the `in` operator.
  [[nodiscard]] GroverResult run(std::uint64_t seed = 7,
                                 std::size_t iterations = 0) const;

private:
  void append_window_load(circ::QuantumCircuit& circuit,
                          std::span<const std::size_t> index,
                          std::span<const std::size_t> window) const;
  void append_oracle(circ::QuantumCircuit& circuit,
                     std::span<const std::size_t> window) const;

  std::string text_;
  std::string pattern_;
  std::size_t positions_ = 0;   // P = n - m + 1
  std::size_t index_bits_ = 0;  // ceil(log2 P)
  std::vector<std::uint64_t> matches_;
};

}  // namespace qutes::algo
