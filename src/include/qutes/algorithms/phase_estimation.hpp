// Quantum phase estimation for a single-qubit phase gate P(2 pi phi): given
// the eigenstate |1>, a t-bit counting register estimates phi to t bits.
// Exercises the QFT substrate end-to-end and backs the DSL's planned
// arithmetic extensions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Build the QPE circuit: `precision_bits` counting qubits, one eigenstate
/// qubit prepared in |1>, controlled-P(2 pi phi * 2^k) ladder, inverse QFT,
/// measurement of the counting register.
[[nodiscard]] circ::QuantumCircuit build_phase_estimation_circuit(
    std::size_t precision_bits, double phi);

struct PhaseEstimate {
  std::uint64_t raw = 0;   ///< measured counting-register value
  double phi = 0.0;        ///< raw / 2^t
};

/// Run QPE once and decode the estimate.
[[nodiscard]] PhaseEstimate run_phase_estimation(std::size_t precision_bits, double phi,
                                                 std::uint64_t seed = 7);

}  // namespace qutes::algo
