// Quantum Fourier transform on a register slice.
//
// Little-endian convention: QFT maps |x> to (1/sqrt(2^n)) sum_k
// e^{2 pi i x k / 2^n} |k> with qubits[0] the LSB of x. Used directly by the
// Draper adder and phase estimation, and exposed as a Qutes builtin.
#pragma once

#include <cstddef>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Append the QFT over `qubits` (in-place). `do_swaps` controls the final
/// bit-reversal swap network; the Draper adder skips it.
void append_qft(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits,
                bool do_swaps = true);

/// Append the inverse QFT over `qubits`.
void append_iqft(circ::QuantumCircuit& circuit, std::span<const std::size_t> qubits,
                 bool do_swaps = true);

/// Convenience: an n-qubit circuit containing just the QFT.
[[nodiscard]] circ::QuantumCircuit make_qft(std::size_t num_qubits, bool do_swaps = true);

}  // namespace qutes::algo
