// Hybrid variational eigensolver (VQE) driver — the quantum-classical
// collaboration workflow the paper's introduction motivates ("hybrid
// workflows in fields like machine learning"). A classical coordinate
// -descent optimizer drives a parameterized ansatz circuit; energies are
// Pauli-string expectations read from the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::algo {

/// Observable: sum_k coefficient_k * PauliString_k (strings MSB-first, one
/// character per qubit, over {I, X, Y, Z}).
struct Hamiltonian {
  struct Term {
    double coefficient = 0.0;
    std::string pauli;
  };
  std::vector<Term> terms;

  /// <psi| H |psi>.
  [[nodiscard]] double energy(const sim::StateVector& psi) const;

  /// Exact ground-state energy by dense diagonalization (power iteration on
  /// a shifted matrix); intended for validation at small n.
  [[nodiscard]] double exact_ground_energy(std::size_t num_qubits) const;
};

/// Hardware-efficient ansatz: `layers` repetitions of per-qubit RY
/// rotations followed by a CX entangling ladder, then one final RY layer.
/// Parameter count: num_qubits * (layers + 1). A symbolic overload (no
/// angle vector, unbound circ::Param angles) lives in variational.hpp.
[[nodiscard]] circ::QuantumCircuit build_ry_ansatz(std::size_t num_qubits,
                                                   std::size_t layers,
                                                   std::span<const double> parameters);

struct VqeResult {
  double energy = 0.0;
  std::vector<double> parameters;
  std::size_t evaluations = 0;  ///< circuit simulations performed
  std::size_t sweeps = 0;       ///< optimizer sweeps over the parameters
};

struct VqeOptions {
  std::size_t layers = 1;
  std::size_t max_sweeps = 60;
  double initial_step = 0.7;
  double tolerance = 1e-7;
  std::uint64_t seed = 7;  ///< initial-parameter randomization
};

/// Minimize <H> over the ansatz parameters. Deterministic given the seed.
/// Now a thin wrapper over algo::minimize() (variational.hpp): symbolic RY
/// ansatz, parameter-shift gradients, Adam. `initial_step` is ignored;
/// `max_sweeps` scales the iteration budget.
[[deprecated("use algo::minimize with a VariationalProblem (variational.hpp)")]]
[[nodiscard]] VqeResult run_vqe(const Hamiltonian& hamiltonian,
                                std::size_t num_qubits, VqeOptions options = {});

}  // namespace qutes::algo
