// Cyclic rotation (shift) of a quantum register — the paper's showcased
// constant-time operation (Section 5, after Faro, Pavone & Viola 2024).
//
// rotate_left by k maps qubit i's state to qubit (i + k) mod n. Because a
// rotation is a permutation, it decomposes into two reversals
// (rotate_k = reverse_all . (reverse_prefix ++ reverse_suffix)), and a
// reversal is one layer of disjoint SWAPs — so the whole rotation is at
// most TWO swap layers regardless of n: constant depth. The classical-style
// baseline ripples k single-position shifts of n-1 sequential swaps each,
// for Theta(k * n) depth. bench_rotation reproduces the paper's
// constant-vs-linear claim from these two constructions.
#pragma once

#include <cstddef>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Constant-depth cyclic left rotation by `k` positions (toward higher
/// indices): two parallel SWAP layers.
void append_rotate_constant_depth(circ::QuantumCircuit& circuit,
                                  std::span<const std::size_t> qubits, std::size_t k);

/// Linear-depth baseline: k sequential single-step rotations, each a ripple
/// of n-1 adjacent SWAPs.
void append_rotate_linear_depth(circ::QuantumCircuit& circuit,
                                std::span<const std::size_t> qubits, std::size_t k);

/// Right rotation = left rotation by n - k.
void append_rotate_right_constant_depth(circ::QuantumCircuit& circuit,
                                        std::span<const std::size_t> qubits,
                                        std::size_t k);

}  // namespace qutes::algo
