// Quantum counting: estimate the number M of marked states among N = 2^n
// by phase-estimating the Grover iteration operator G, whose eigenvalues
// e^{+-2i theta} satisfy sin^2(theta) = M / N.
//
// Complements E2: Grover's optimal iteration count needs M, and quantum
// counting is how M is obtained quantumly. The controlled Grover iteration
// is built gate-by-gate (CH/CX/MCZ-with-extra-control), exploiting that the
// X-conjugation layers of the oracle and diffusion cancel on the
// control-off branch, so only the phase cores need the control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

/// Append one Grover iteration (phase oracle for `marked` + diffusion) over
/// `qubits`, all controlled on `control`.
void append_controlled_grover_iteration(circ::QuantumCircuit& circuit,
                                        std::size_t control,
                                        std::span<const std::size_t> qubits,
                                        std::span<const std::uint64_t> marked);

/// Build the counting circuit: `precision_bits` counting qubits +
/// `num_qubits` search qubits; QPE over powers of the Grover operator;
/// measurement of the counting register.
[[nodiscard]] circ::QuantumCircuit build_counting_circuit(
    std::size_t num_qubits, std::span<const std::uint64_t> marked,
    std::size_t precision_bits);

struct CountingResult {
  double estimated_marked = 0.0;  ///< M^ = N sin^2(pi raw / 2^t)
  std::uint64_t raw = 0;          ///< measured counting-register value
  std::size_t true_marked = 0;
  std::size_t search_space = 0;
};

/// Run quantum counting once and decode the estimate.
[[nodiscard]] CountingResult run_quantum_counting(
    std::size_t num_qubits, std::span<const std::uint64_t> marked,
    std::size_t precision_bits, std::uint64_t seed = 7);

}  // namespace qutes::algo
