// QAOA for MaxCut — the combinatorial-optimization workflow the paper's
// introduction names as a quantum application area. Builds on the same
// hybrid loop as VQE: cost unitaries from ZZ terms (CX-RZ-CX), RX mixers,
// classical coordinate descent over the angles, then sampling for the best
// cut.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "qutes/circuit/circuit.hpp"

namespace qutes::algo {

struct MaxCutInstance {
  std::size_t num_vertices = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  /// Number of cut edges for an assignment (bit v = side of vertex v).
  [[nodiscard]] std::size_t cut_value(std::uint64_t assignment) const;

  /// Exhaustive optimum (instances here are small).
  [[nodiscard]] std::size_t max_cut_brute_force() const;
};

/// The p-layer QAOA circuit: H^n, then per layer exp(-i gamma C) as
/// CX-RZ-CX per edge and exp(-i beta B) as RX(2 beta) per vertex.
[[nodiscard]] circ::QuantumCircuit build_qaoa_circuit(
    const MaxCutInstance& instance, std::span<const double> gammas,
    std::span<const double> betas);

struct QaoaResult {
  double expected_cut = 0.0;        ///< <C> at the optimized angles
  std::uint64_t best_assignment = 0;
  std::size_t best_cut = 0;         ///< best cut among sampled assignments
  std::vector<double> gammas;
  std::vector<double> betas;
  std::size_t evaluations = 0;
};

struct QaoaOptions {
  std::size_t layers = 2;
  std::size_t max_sweeps = 60;
  double initial_step = 0.4;
  double tolerance = 1e-6;
  std::size_t sample_shots = 256;
  std::uint64_t seed = 7;
};

/// Optimize the angles, then sample assignments and report the best cut.
/// Now a thin wrapper over algo::minimize() (variational.hpp): symbolic
/// QAOA ansatz, parameter-shift gradients, Adam ascent on the expected cut.
/// `initial_step` is ignored; `max_sweeps` scales the iteration budget.
[[deprecated("use algo::minimize with a VariationalProblem (variational.hpp)")]]
[[nodiscard]] QaoaResult run_qaoa(const MaxCutInstance& instance,
                                  QaoaOptions options = {});

}  // namespace qutes::algo
