// Reference backend: the deliberately simple, obviously-correct oracle that
// every optimized execution path is diffed against.
//
// Where the production simulator applies gates as strided in-place kernel
// sweeps (and the executor fuses, samples, and parallelizes on top), the
// reference backend does the one thing whose correctness is checkable by
// inspection: it builds the full 2^n x 2^n dense unitary of every single
// instruction from the textbook matrix definitions (its own cos/sin
// formulas, NOT sim::gates, so a transcription error in either copy shows up
// as a diff) and applies it by dense matrix-vector product. No fusion, no
// specialization, no shortcuts — O(4^n) per instruction, which is fine at
// the 2..7 qubits the differential suites use.
//
// Non-unitary semantics (measurement, reset, classical conditions) are exact
// rather than sampled: the backend enumerates every measurement outcome as a
// separate weighted trajectory branch, so the final outcome distribution is
// closed-form and sampling-noise-free. That makes it the one backend against
// which statistical comparisons (TVD of sampled counts) are meaningful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/sim/matrix.hpp"

namespace qutes::testing {

using sim::cplx;

/// Dense row-major 2^n x 2^n complex matrix over the full register. Not
/// size-capped like sim::MatrixN — the reference backend trades memory for
/// obviousness.
class DenseUnitary {
public:
  DenseUnitary() = default;
  /// Identity over `num_qubits` qubits.
  explicit DenseUnitary(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const noexcept {
    return std::size_t{1} << num_qubits_;
  }
  [[nodiscard]] cplx operator()(std::size_t row, std::size_t col) const noexcept {
    return m_[row * dim() + col];
  }
  [[nodiscard]] cplx& at(std::size_t row, std::size_t col) noexcept {
    return m_[row * dim() + col];
  }

  /// Dense matrix product this * rhs (same dimension required).
  [[nodiscard]] DenseUnitary operator*(const DenseUnitary& rhs) const;

  /// Dense matrix-vector product this * amps.
  [[nodiscard]] std::vector<cplx> apply(std::span<const cplx> amps) const;

  /// Max-norm distance of U * U^dagger from the identity.
  [[nodiscard]] double unitarity_defect() const;

private:
  std::size_t num_qubits_ = 0;
  std::vector<cplx> m_;
};

/// Full-register dense unitary of one instruction (unitary gates and
/// GlobalPhase only; throws CircuitError for Measure/Reset/Barrier). The
/// instruction's classical condition, if any, is ignored — trajectory
/// enumeration handles conditions at the branch level.
[[nodiscard]] DenseUnitary instruction_unitary(const circ::Instruction& instruction,
                                               std::size_t num_qubits);

/// Accumulated dense unitary of a measurement-free circuit, global phase
/// included. Throws CircuitError if the circuit contains Measure/Reset or
/// classically conditioned instructions.
[[nodiscard]] DenseUnitary circuit_unitary(const circ::QuantumCircuit& circuit);

/// One weighted trajectory branch of a dynamic circuit: the (normalized)
/// post-selection state, the classical bits written so far, and the branch's
/// total probability.
struct ReferenceBranch {
  std::vector<cplx> amps;
  std::uint64_t clbits = 0;
  double probability = 1.0;
};

/// Final state of a unitary-only circuit: circuit_unitary applied to |0...0>.
[[nodiscard]] std::vector<cplx> reference_statevector(
    const circ::QuantumCircuit& circuit);

/// All final trajectory branches of a (possibly dynamic) circuit. Every
/// measurement splits every live branch into its 0 and 1 outcomes; branches
/// whose probability falls below `prune_below` are dropped. Branch count is
/// bounded by 2^(measured bits), so keep differential circuits narrow.
[[nodiscard]] std::vector<ReferenceBranch> enumerate_trajectories(
    const circ::QuantumCircuit& circuit, double prune_below = 1e-14);

/// Exact outcome distribution over classical-register bitstrings (MSB-first
/// keys, same convention as sim::Counts). Probabilities sum to ~1.
[[nodiscard]] std::map<std::string, double> reference_distribution(
    const circ::QuantumCircuit& circuit);

}  // namespace qutes::testing
