// Cross-backend differential oracle harness.
//
// Runs one input circuit through every production execution path —
// gate-at-a-time statevector, density matrix, the runtime fused executor,
// all four PassManager presets, the QASM round trip, and the MPS simulator
// (truncation disabled) — and diffs each against the reference backend
// (reference_backend.hpp), up to global phase.
// On a divergence the harness delta-debugs the circuit down to a minimal
// failing instruction subset and reports it with the seed and a QASM dump,
// so a CI failure line is directly reproducible:
//
//   qutes::testing::diff_backends(random_circuit(SEED, opts), SEED)
//
// Dynamic circuits (mid-circuit measurement, c_if, reset) are diffed at the
// distribution level instead: exact reference distribution vs sampled counts
// (total variation distance), plus bit-identical counts across fused vs
// unfused execution, O0 lowering, and the QASM round trip (same executor
// seed, so any mismatch is a semantics change, not sampling noise).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/sim/statevector.hpp"
#include "qutes/testing/reference_backend.hpp"

namespace qutes::testing {

// ---- comparators -----------------------------------------------------------

struct StateComparison {
  bool equivalent = false;
  /// |<reference|state>|^2 restricted to the reference subspace.
  double fidelity = 0.0;
  /// Probability weight the wider state leaks outside the reference
  /// subspace (ancillas not returned to |0>). Zero when dimensions match.
  double residual = 0.0;
  /// Largest per-amplitude deviation after optimal global-phase alignment.
  double max_abs_delta = 0.0;
  /// Human-readable failure description; empty when equivalent.
  std::string detail;
};

/// Compare `state` against `reference` up to a global phase. `state` may
/// live on more qubits than the reference (compilation ancillas); the extra
/// qubits must carry no probability weight. Tolerance is on |1 - fidelity|
/// (absolute value, so norm bugs that inflate the overlap still fail) and on
/// the residual; max_abs_delta is additionally bounded by sqrt(tol).
[[nodiscard]] StateComparison compare_states_up_to_global_phase(
    std::span<const cplx> reference, std::span<const cplx> state,
    double tol = 1e-9);

/// Throwing form of the comparator for use outside gtest: raises
/// CircuitError carrying the comparison detail on divergence.
void assert_equiv_up_to_global_phase(std::span<const cplx> reference,
                                     std::span<const cplx> state,
                                     double tol = 1e-9);

/// Total variation distance between two outcome distributions:
/// (1/2) sum_k |a_k - b_k| over the union of keys. 0 = identical, 1 = disjoint.
[[nodiscard]] double total_variation_distance(
    const std::map<std::string, double>& a, const std::map<std::string, double>& b);

/// Normalize a sampled counts histogram into a distribution.
[[nodiscard]] std::map<std::string, double> counts_to_distribution(
    const sim::Counts& counts);

// ---- backends --------------------------------------------------------------

/// Every optimized execution path diffed against the reference backend.
enum class Backend {
  Statevector,     ///< Executor::run_single (gate-at-a-time tuned kernels)
  DensityMatrix,   ///< sim::DensityMatrix evolution, fidelity vs reference
  FusedExecutor,   ///< runtime gate-fusion plan replayed over a statevector
  PresetO0,        ///< make_pipeline(Preset::O0) then statevector
  PresetO1,        ///< make_pipeline(Preset::O1) then statevector
  PresetBasis,     ///< make_pipeline(Preset::Basis) then statevector
  PresetHardware,  ///< make_pipeline(Preset::Hardware) then statevector
  QasmRoundTrip,   ///< export -> import -> statevector
  Mps,             ///< circ::evolve_mps (truncation disabled) -> to_statevector
  Stabilizer,      ///< circ::evolve_stabilizer -> to_statevector (Clifford only)
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// The nine backends every random circuit is diffed through, in declaration
/// order. The Stabilizer lane is NOT in this set — it only runs Clifford
/// circuits, so sweeps opt into it via DiffOptions::backends.
[[nodiscard]] std::span<const Backend> all_backends() noexcept;

/// Final statevector of a unitary-only circuit through one backend. The
/// DensityMatrix backend has no statevector; it is checked via
/// check_backend_against_reference instead (this throws for it).
[[nodiscard]] std::vector<cplx> backend_statevector(
    const circ::QuantumCircuit& circuit, Backend backend);

/// One backend-vs-reference verdict. `metric` is 1 - fidelity (0 = exact);
/// exceptions out of the backend are failures, not crashes.
struct BackendCheck {
  bool ok = false;
  double metric = 0.0;
  std::string detail;
};

[[nodiscard]] BackendCheck check_backend_against_reference(
    const circ::QuantumCircuit& circuit, std::span<const cplx> reference,
    Backend backend, double tol);

// ---- the harness -----------------------------------------------------------

struct DiffOptions {
  /// Backends to diff; empty = all nine.
  std::vector<Backend> backends;
  /// Tolerance on 1 - fidelity for state comparisons.
  double tol = 1e-7;
  /// Delta-debug failing circuits down to a minimal instruction subset.
  bool minimize = true;
  /// Executor settings for dynamic (counts-level) differentials.
  std::size_t shots = 4096;
  std::uint64_t exec_seed = 0x0d1ff5eedULL;
  /// Sampling tolerance: TVD between the exact reference distribution and
  /// `shots` sampled outcomes.
  double tvd_tol = 0.08;
};

struct DiffFailure {
  std::uint64_t seed = 0;
  std::string backend;
  double metric = 0.0;
  std::string detail;
  std::size_t original_size = 0;   ///< instructions before minimization
  std::size_t minimized_size = 0;  ///< instructions in the minimal repro
  std::string minimized_qasm;      ///< QASM dump of the minimal repro
};

struct DiffReport {
  std::size_t circuits = 0;
  std::size_t comparisons = 0;
  std::vector<DiffFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  /// Multi-line report: one "seed=... backend=..." block per failure with
  /// the minimized QASM repro, or a one-line all-clear.
  [[nodiscard]] std::string summary() const;
  /// Fold another report into this one (for seed-sweep accumulation).
  void merge(DiffReport other);
};

/// Diff a unitary-only circuit through every requested backend against the
/// reference backend. `seed` is only recorded for reporting.
[[nodiscard]] DiffReport diff_backends(const circ::QuantumCircuit& circuit,
                                       std::uint64_t seed,
                                       const DiffOptions& options = {});

/// Diff a dynamic circuit (measurements/conditions/resets) at the counts
/// level: exact-distribution TVD for the fused executor, and bit-identical
/// counts for fused-vs-unfused, O0 lowering, and the QASM round trip.
[[nodiscard]] DiffReport diff_dynamic_backends(const circ::QuantumCircuit& circuit,
                                               std::uint64_t seed,
                                               const DiffOptions& options = {});

/// Greedy delta-debugging: repeatedly drop instructions while the backend
/// still diverges from the (recomputed) reference. Returns the minimal
/// still-failing circuit; returns `circuit` unchanged if it doesn't fail.
[[nodiscard]] circ::QuantumCircuit minimize_failing_circuit(
    const circ::QuantumCircuit& circuit, Backend backend, double tol);

}  // namespace qutes::testing
