// Shared randomized input generators for tests, fuzzing, and benchmarks.
//
// Before this header existed, test_fuzz.cpp, test_roundtrip_property.cpp,
// test_fusion_engine.cpp, and the bench drivers each carried a private,
// slightly different random-circuit generator — so a gate class covered by
// one suite was silently missing from another. These are the single shared
// copies: seeded, deterministic (they use only qutes::Rng, never the
// standard library's engines), and covering the full instruction set
// (multi-controlled gates, barriers, GlobalPhase, mid-circuit measurement,
// c_if, reset) so every consumer exercises the same input space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "qutes/circuit/circuit.hpp"

namespace qutes::testing {

struct CircuitGenOptions {
  std::size_t num_qubits = 4;
  std::size_t gates = 30;
  /// Enable 3+-qubit gates (CCX/CSWAP) and multi-controlled MCX/MCZ/MCP.
  bool allow_wide = true;
  /// Sprinkle barriers between gates.
  bool allow_barrier = true;
  /// Sprinkle GlobalPhase instructions (unobservable in counts, observable
  /// in statevector comparisons — exactly what "up to global phase" must
  /// tolerate).
  bool allow_global_phase = true;
  /// Enable mid-circuit measurement, reset, and c_if-conditioned gates.
  /// The circuit gets num_qubits classical bits either way.
  bool allow_dynamic = false;
  /// Append a measure-everything layer at the end.
  bool measure_all = false;
};

/// Deterministic random circuit over the full gate set. Same seed + options
/// always builds the same circuit, on every platform.
[[nodiscard]] circ::QuantumCircuit random_circuit(std::uint64_t seed,
                                                  const CircuitGenOptions& options = {});

/// Random circuit restricted to the Clifford group {H, S, Sdg, X, Y, Z, CX,
/// CZ, SWAP}: states stay exactly representable, which pins down phase
/// conventions without floating-point slack.
[[nodiscard]] circ::QuantumCircuit random_clifford_circuit(std::uint64_t seed,
                                                           std::size_t num_qubits,
                                                           std::size_t gates);

/// The bench workload: alternating layers of random U3 on every qubit and a
/// CX ring with alternating offset — the standard fusion-friendly circuit.
[[nodiscard]] circ::QuantumCircuit brickwork_circuit(std::size_t num_qubits,
                                                     std::size_t depth,
                                                     std::uint64_t seed);

/// Random circuit whose two-qubit gates act only on adjacent pairs (q, q+1):
/// the native workload of a chain-layout (MPS) backend, since it never
/// triggers swap routing. Mixes the full 1q set with CX/CY/CZ/CH/CP/CRZ/SWAP
/// on nearest neighbors.
[[nodiscard]] circ::QuantumCircuit random_nearest_neighbor_circuit(
    std::uint64_t seed, std::size_t num_qubits, std::size_t gates);

struct ProgramGenOptions {
  /// Top-level statements to generate.
  std::size_t statements = 12;
  /// Maximum nesting depth of generated if/while/foreach bodies.
  std::size_t max_depth = 3;
  /// Emit quantum declarations and gate statements (not just classical code).
  bool quantum = true;
};

/// Grammar-driven random Qutes source program. Output is syntactically valid
/// by construction and usually type-correct; the contract consumers assert
/// is LangError-or-success, never a crash.
[[nodiscard]] std::string random_qutes_program(std::uint64_t seed,
                                               const ProgramGenOptions& options = {});

/// Corrupt a source string with 1..4 random byte-level mutations (delete,
/// duplicate, transpose, or overwrite a span; truncate; inject punctuation
/// or keyword fragments). Turns the valid-program generator into a
/// front-end fuzzer.
[[nodiscard]] std::string mutate_source(std::string source, std::uint64_t seed);

}  // namespace qutes::testing
