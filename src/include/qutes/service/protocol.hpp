// The qutesd wire protocol: newline-delimited JSON over a local socket.
//
// Every request is one JSON object on one line; every response is one JSON
// object on one line. Responses carry the request's `id` (client-chosen,
// echoed verbatim), so a client may pipeline many requests on a single
// connection and match completions out of order — the daemon's scheduler is
// free to batch and reorder independent requests.
//
// Request fields (all optional except `source` for run/trace):
//   op       "run" (default) compile+sample | "trace" seed-specific program
//            output | "ping" | "stats" | "shutdown"
//   id       opaque string echoed into the response
//   source   Qutes program text
//   shots    sample count (default 1024)
//   seed     RNG seed for this request's draws (default canonical seed)
//   backend  backend name incl. "auto" (default "statevector")
//   pipeline pass preset name: "" none | o0 | o1 | basis | hardware
//   exec     "vm" (default) | "ast" — which language engine compiles/runs
//   stdlib   load the Qutes standard library first (default true)
//   memory   also return per-shot bitstrings in shot order (default false)
//   params   [v1, v2, ...] bindings for the program's `param(...)`
//            declarations, in declaration order. Params are NOT part of the
//            compile cache key: the daemon compiles the program once with
//            placeholder bindings and re-binds the cached symbolic circuit
//            per request, so a parameter sweep is one compile and N binds.
//
// Response fields:
//   ok       false => `error` holds the message, nothing else is meaningful
//   id       echoed from the request
//   cache    "hit" | "miss" for run/trace (whether compilation was skipped)
//   backend  resolved backend the counts were produced on ("auto" resolved
//            to its concrete method at compile time and cached)
//   counts   {"bits": n, ...} histogram (run)
//   memory   ["bits", ...] per-shot outcomes when requested (run)
//   output   program print output — trace always; run only when the program
//            logged no qubits (a classical program's output is deterministic)
//   elapsed_ms daemon-side handling time for this request
//   stats    object payload for the stats op
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qutes/run_config.hpp"
#include "qutes/service/json.hpp"
#include "qutes/sim/statevector.hpp"

namespace qutes::service {

struct Request {
  std::string op = "run";
  std::string id;
  std::string source;
  std::size_t shots = 1024;
  std::uint64_t seed = 0x5eed0f5eedULL;
  std::string backend = "statevector";
  std::string pipeline;  ///< preset name; "" = no pipeline
  std::string exec = "vm";
  bool include_stdlib = true;
  bool record_memory = false;
  /// `param(...)` bindings in declaration order (excluded from the compile
  /// cache key — see cache_key.hpp).
  std::vector<double> params{};
};

struct Response {
  bool ok = true;
  std::string id;
  std::string error;
  std::string cache;    ///< "hit" | "miss" | "" (ops that never compile)
  std::string backend;  ///< resolved backend name
  sim::Counts counts;
  std::vector<std::string> memory;
  std::string output;
  double elapsed_ms = 0.0;
  JsonObject stats;  ///< stats-op payload
};

/// Parse one request line. Throws ServiceError on malformed JSON, a
/// non-object document, an unknown op, or an unknown exec/pipeline value —
/// the daemon turns the exception into an ok:false response.
[[nodiscard]] Request parse_request(const std::string& line);

/// One line, no trailing newline.
[[nodiscard]] std::string serialize_request(const Request& request);

[[nodiscard]] Response parse_response(const std::string& line);

[[nodiscard]] std::string serialize_response(const Response& response);

/// The RunConfig a request describes (seed/shots/backend/exec/stdlib/memory
/// filled in; pipeline left for the service to resolve from the preset
/// name). `validate()` is NOT called — the service does that inside the
/// request span so failures become error responses.
[[nodiscard]] RunConfig request_config(const Request& request);

/// Convenience for error paths: an ok:false response echoing `id`.
[[nodiscard]] Response error_response(const std::string& id,
                                      const std::string& message);

}  // namespace qutes::service
