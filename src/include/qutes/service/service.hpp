// qutesd request engine: compile cache + batched async scheduler.
//
// The Service is the daemon's brain, independent of any transport (the
// socket server in server.hpp feeds it; tests drive it in-process). Two
// entry points:
//
//   * handle(request)  — synchronous: resolve the compile cache (single-
//     flight on a miss), execute, return the response.
//   * submit(request, callback) — asynchronous: enqueue, return immediately;
//     a worker-pool thread executes and invokes the callback. Workers drain
//     same-key "run" requests from the queue into ONE batch and execute them
//     through Executor::run_batch, which shares the seed-independent work
//     (pipeline, backend resolution, and — on the statevector fast path —
//     the full state evolution) across the batch. Batching never changes
//     results: run_batch guarantees per-item counts bit-identical to a
//     sequential Executor::run under that item's seed, because every
//     per-item draw comes from the item's own counter-derived RNG streams.
//
// Compile-once semantics: a cached artifact is the program compiled under
// the CANONICAL seed (RunConfig's default), so it is a pure function of the
// cache key even when the program's logged circuit depends on mid-circuit
// measurement draws. A "run" request then executes the cached lowered
// circuit as a shots experiment under the request's own seed — the same
// semantics as the CLI's --replay. The "trace" op instead re-runs the cached
// bytecode under the request's seed for seed-specific program output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "qutes/service/compile_cache.hpp"
#include "qutes/service/protocol.hpp"

namespace qutes::service {

struct ServiceOptions {
  /// Worker-pool size for submit(); 0 = min(hardware_concurrency, 4).
  std::size_t workers = 0;
  /// Compile-cache byte budget (LRU-evicted past this).
  std::size_t cache_bytes = 64u << 20;
  /// Largest same-key batch one worker drains at once.
  std::size_t max_batch = 64;
};

class Service {
public:
  explicit Service(ServiceOptions options = {});
  ~Service();  // stop()

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Synchronous request handling. Never throws: failures become ok:false
  /// responses carrying the exception message.
  [[nodiscard]] Response handle(const Request& request);

  using Callback = std::function<void(Response)>;

  /// Enqueue for the worker pool. ping/stats/shutdown are answered inline
  /// (they never block behind compiles); run/trace requests queue. Requests
  /// may be submitted before start() — they sit in the queue, which is how
  /// tests build a deterministic batch. The callback runs on a worker
  /// thread (or inline for the instant ops).
  void submit(Request request, Callback done);

  /// Spawn the worker pool (idempotent).
  void start();

  /// Graceful drain: workers finish every queued request, then exit.
  /// Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] CompileCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t worker_count() const noexcept { return worker_count_; }
  /// A shutdown op was handled (the transport should stop accepting).
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

private:
  struct Pending {
    Request request;
    Callback done;
    std::uint64_t key = 0;
    bool batchable = false;  ///< "run" ops batch by key; "trace" runs solo
  };

  [[nodiscard]] Response dispatch(const Request& request);
  [[nodiscard]] Response run_request(const Request& request);
  [[nodiscard]] Response trace_request(const Request& request);
  [[nodiscard]] Response stats_request(const Request& request);
  /// Program output under the request's `param` bindings (classical
  /// parameterized programs, where the canonical output is a placeholder).
  [[nodiscard]] std::string rerun_output(const CompiledProgram& entry,
                                         const Request& request) const;
  [[nodiscard]] CompileCache::GetResult entry_for(const Request& request);
  [[nodiscard]] std::shared_ptr<const CompiledProgram> compile_entry(
      const Request& request, std::uint64_t key) const;
  void process_batch(std::vector<Pending> batch);
  void worker_loop();

  ServiceOptions options_;
  std::size_t worker_count_ = 0;
  CompileCache cache_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace qutes::service
