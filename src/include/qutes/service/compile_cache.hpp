// Content-addressed compile cache for qutesd.
//
// Entries are keyed by qutes::cache_key(source, config, preset) — the fnv1a64
// of the program text plus the canonical run-config string (see
// common/cache_key.hpp). A hit skips the whole front end (lex, parse,
// lowering, pipeline, backend auto-resolution); the request then executes the
// cached lowered circuit directly.
//
// Three properties the service relies on:
//   * Single-flight: concurrent misses on the same key compile exactly once.
//     The first caller becomes the leader and compiles outside the cache
//     lock; the rest block until the leader publishes (or rethrows the
//     leader's exception). Failed compiles are never cached — the next
//     request retries.
//   * Bounded by bytes, evicted LRU: every entry carries a byte estimate;
//     inserting past the budget evicts least-recently-used entries until the
//     cache fits (the newest entry is always kept, even when it alone
//     exceeds the budget — a cache that cannot hold the working item would
//     thrash forever).
//   * Immutable entries: published CompiledPrograms are shared_ptr-to-const,
//     so readers never take the cache lock while executing and eviction
//     cannot pull an entry out from under a running request.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qutes/circuit/circuit.hpp"
#include "qutes/lang/bytecode.hpp"
#include "qutes/run_config.hpp"

namespace qutes::service {

/// One cached compilation artifact: everything a request needs to execute
/// without touching the front end. Immutable after publication.
struct CompiledProgram {
  std::uint64_t key = 0;
  std::string pipeline_preset;
  /// Backend the request asked for ("auto" preserved for reporting).
  std::string requested_backend;
  /// Concrete method the entry replays on — "auto" is resolved against the
  /// lowered circuit once, at compile time, and cached (an all-Clifford
  /// program keeps hitting the stabilizer method on warm requests without
  /// re-running the Clifford scan).
  std::string resolved_backend;
  /// Per-request execution template: backend.name = resolved_backend,
  /// pipeline cleared (the circuit below is already lowered). The service
  /// copies this and overrides seed/shots/record_memory per request.
  RunConfig exec_config;
  /// The pipeline-lowered circuit each request runs as a shots experiment.
  /// Compiled with the canonical seed, so the artifact is a pure function of
  /// the cache key even for programs whose circuit depends on mid-circuit
  /// measurement outcomes (same semantics as the CLI's --replay).
  circ::QuantumCircuit lowered;
  /// Lowered bytecode for the trace op (null when exec=ast — the tree-walk
  /// mutates its AST while running, so ast traces recompile per request).
  std::shared_ptr<const lang::Bytecode> bytecode;
  /// Program print output at the canonical seed. Returned for run requests
  /// only when the program logged no qubits (then it is deterministic).
  std::string canonical_output;
  /// Byte estimate for cache accounting (source + circuit + bytecode).
  std::size_t bytes = 0;
};

class CompileCache {
public:
  explicit CompileCache(std::size_t max_bytes = 64u << 20);

  using Compiler = std::function<std::shared_ptr<const CompiledProgram>()>;

  struct GetResult {
    std::shared_ptr<const CompiledProgram> program;
    bool hit = false;  ///< true when no compile ran for this caller
  };

  /// Look up `key`; on a miss run `compile` under the single-flight guard
  /// and insert its result. `compile` must return non-null; its exceptions
  /// propagate to every waiter for this flight and nothing is cached.
  /// Joining an in-progress flight reports as a miss (the caller did wait
  /// for a compile) but never runs `compile` itself.
  [[nodiscard]] GetResult get_or_compile(std::uint64_t key,
                                         const Compiler& compile);

  /// Test hook: current entry for `key` (null if absent). Does not count as
  /// a hit and does not touch LRU order.
  [[nodiscard]] std::shared_ptr<const CompiledProgram> peek(
      std::uint64_t key) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compiles = 0;   ///< compiles that ran (single-flight dedups)
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;        ///< resident entry bytes
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// Drop every entry (in-progress flights are unaffected; they publish
  /// into the emptied cache).
  void clear();

private:
  struct InFlight;

  void insert_locked(std::shared_ptr<const CompiledProgram> program);
  void evict_locked();

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  /// LRU order, front = most recently used. Entries own their list node via
  /// the map below.
  std::list<std::uint64_t> lru_;
  struct Entry {
    std::shared_ptr<const CompiledProgram> program;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_;
  Stats stats_;
};

}  // namespace qutes::service
