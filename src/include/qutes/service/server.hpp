// qutesd transport: newline-delimited JSON over an AF_UNIX stream socket.
//
// The Server owns the listening socket and a thread per connection; every
// parsed request is submitted to the Service's worker pool, so requests from
// different connections (and pipelined requests on one connection) share the
// compile cache and batch into joint executions. Responses are written in
// completion order, matched by the echoed `id`.
//
// Shutdown is graceful either way it arrives — a {"op":"shutdown"} request
// or request_stop() (the signal handler's self-pipe): the server stops
// accepting, half-closes every open connection (SHUT_RD, so in-flight
// requests still get their responses), drains the worker pool, joins, and
// unlinks the socket path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "qutes/service/service.hpp"

namespace qutes::service {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX socket. Must fit sockaddr_un::sun_path
  /// (~107 bytes); a stale file from a previous run is unlinked at bind.
  std::string socket_path;
  ServiceOptions service;
  /// Log one line per connection and per shutdown stage to stderr.
  bool verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and serve until a shutdown request arrives; returns after
  /// the graceful drain completes. Throws ServiceError when the socket
  /// cannot be created/bound.
  void run();

  /// Ask the accept loop to begin the graceful drain. Async-signal-safe
  /// (one write to a self-pipe), callable from any thread.
  void request_stop() noexcept;

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

private:
  void handle_connection(int fd);

  ServerOptions options_;
  Service service_;
  int stop_pipe_[2] = {-1, -1};
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::vector<int> conn_fds_;       ///< open connection fds (for SHUT_RD)
  std::size_t live_connections_ = 0;
};

/// Client side: connect to `socket_path`, send one request line, read one
/// response line. Throws ServiceError on connect/IO failure or a malformed
/// response.
[[nodiscard]] Response request_over_socket(const std::string& socket_path,
                                           const Request& request);

/// Shared daemon entry for `qutesd` and `qutes serve`: install
/// SIGTERM/SIGINT handlers wired to request_stop(), print the listening
/// line, run to completion. Returns a process exit code.
int run_daemon(const ServerOptions& options);

}  // namespace qutes::service
