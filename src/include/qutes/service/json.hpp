// Minimal JSON value type for the qutesd wire protocol.
//
// The daemon speaks newline-delimited JSON over a local socket
// (service/protocol.hpp), so it needs to parse attacker-controlled request
// lines defensively and serialize responses without pulling in an external
// dependency (the container bakes none in). This is a deliberately small
// implementation: one variant value type, a recursive-descent parser with a
// hard nesting-depth cap, and a serializer that escapes every control
// character. It supports exactly the JSON the protocol uses — null, bool,
// 64-bit integers, doubles, strings (with \uXXXX escapes), arrays, objects —
// and rejects everything else (trailing garbage, unpaired surrogates are
// replaced, duplicate keys keep the last).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "qutes/common/error.hpp"

namespace qutes::service {

/// Raised by the service layer: malformed protocol lines, socket failures,
/// daemon-side request errors surfaced to the client.
class ServiceError : public Error {
public:
  explicit ServiceError(const std::string& what) : Error(what) {}
};

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

class Json {
public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t v) : value_(v) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v);  // stored as Int when it fits, Double otherwise
  Json(double v) : value_(v) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] Type type() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::Int || type() == Type::Double;
  }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::Object; }

  /// Typed reads with a fallback — protocol code never throws on a missing
  /// or mistyped optional field, it just takes the default.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept;
  [[nodiscard]] const std::string& as_string() const;  ///< "" when not a string
  [[nodiscard]] const JsonArray& as_array() const;     ///< empty when not an array
  [[nodiscard]] const JsonObject& as_object() const;   ///< empty when not an object

  /// Object member lookup; a shared null value when absent or not an object.
  [[nodiscard]] const Json& get(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Compact serialization (no whitespace). NaN/Inf serialize as null —
  /// they are not representable in JSON.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete JSON document. Throws ServiceError naming
  /// the byte offset on malformed input, trailing garbage, or nesting
  /// deeper than 64 levels.
  [[nodiscard]] static Json parse(const std::string& text);

private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace qutes::service
