// Observability layer: RAII span tracing + a process-wide metrics registry.
//
// The paper's stack outsources everything below the DSL to Qiskit, so it
// never needed to see inside its own pipeline. This reproduction owns
// lexer -> parser -> interpreter -> PassManager -> executor -> backend, and
// finding the next hot path in that stack needs first-class instrumentation
// (the runtime-management argument QCOR and the QRAM architecture papers
// both make). This header is the one mechanism every layer uses:
//
//  * Span       — RAII scope timer. When tracing is enabled, its lifetime is
//    recorded into a thread-local buffer and exported as a Chrome-trace
//    ("chrome://tracing" / Perfetto) complete event; nesting falls out of
//    scope nesting per thread, so OpenMP shot loops trace correctly. When
//    tracing is disabled a Span is two steady_clock reads and no allocation,
//    which also makes it the timing primitive PassManager uses for its
//    per-pass wall-time bookkeeping (one instrumentation mechanism, traced
//    or not).
//  * MetricsRegistry — named Counter / Gauge / Histogram instruments
//    (gates applied, fused blocks, SVD truncations, peak state bytes,
//    shots/sec, ...). Instruments are atomics: hot paths accumulate locally
//    and publish once per run; disabled-mode updates are a single relaxed
//    load. Lookup by name is mutex-guarded and returns a stable reference —
//    resolve once outside the loop, never per gate.
//
// Exporters: export_chrome_trace() (JSON for chrome://tracing),
// export_metrics_json() (flat snapshot), format_metrics_report() (aligned
// text for --metrics). The CLI wires these to --trace FILE, --metrics, and
// --metrics-json FILE; benches snapshot the same metric names into
// BENCH_JSON_OBS rows so offline tables and the runtime agree on naming.
// The metric name catalog lives in obs::names (documented in DESIGN.md §11).
#pragma once

#include <chrono>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qutes::obs {

// ---- global enablement ------------------------------------------------------

/// Master switches. Both default to off: a build that never calls these has
/// no buffers, no events, and no metric values — only relaxed atomic loads
/// on the instrumented paths.
void set_tracing_enabled(bool enabled) noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

// ---- tracing ----------------------------------------------------------------

/// One completed span, merged out of the per-thread buffers. Timestamps are
/// microseconds relative to the process trace epoch (first obs use).
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start time
  double dur_us = 0.0;  ///< duration (>= 0)
  int tid = 0;          ///< dense thread id (0 = first thread seen)
};

/// RAII trace scope. Construction captures the start time; destruction
/// appends a complete event to the calling thread's buffer iff tracing was
/// enabled at construction. The literal-name constructor never allocates,
/// so it is safe on hot paths with tracing disabled; the owning-string
/// overload is for dynamic names (per-pass spans) on cold paths.
class Span {
public:
  explicit Span(const char* name) noexcept
      : lit_(name), start_(std::chrono::steady_clock::now()),
        record_(tracing_enabled()) {}
  explicit Span(std::string name) noexcept
      : owned_(std::move(name)), start_(std::chrono::steady_clock::now()),
        record_(tracing_enabled()) {}
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall time since construction. Valid whether or not tracing is enabled —
  /// this is the shared timing primitive (PassManager's per-pass wall_ms).
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

private:
  const char* lit_ = nullptr;  ///< literal name (no ownership) ...
  std::string owned_;          ///< ... or owned dynamic name
  std::chrono::steady_clock::time_point start_;
  bool record_ = false;
};

/// Drop all recorded events (buffers stay registered; safe to call between
/// runs, not concurrently with live spans).
void clear_trace();

/// Merge every thread's buffer, sorted by start time.
[[nodiscard]] std::vector<TraceEvent> collect_trace();

/// Chrome-trace JSON: {"traceEvents":[{"name","ph":"X","ts","dur","pid","tid"}]}.
/// Loadable in chrome://tracing and Perfetto.
[[nodiscard]] std::string export_chrome_trace();

/// Write export_chrome_trace() to `path`; false if the file cannot be opened.
bool write_chrome_trace(const std::string& path);

// ---- metrics ----------------------------------------------------------------

/// Monotonic event count (gates applied, shots run, SVD truncations, ...).
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written / high-water value (peak statevector bytes, max bond dim,
/// shots/sec of the latest run).
class Gauge {
public:
  void set(double v) noexcept {
    if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Keep the maximum of the current value and `v` (thread-safe CAS loop).
  void set_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Streaming distribution summary (per-pass wall ms, per-run bond dims):
/// count / sum / min / max, thread-safe, no per-record allocation.
class Histogram {
public:
  void record(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;  ///< 0 when empty
  [[nodiscard]] double max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  void reset() noexcept;

private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_value_{false};
};

/// Named instrument registry. Instruments are created on first lookup and
/// never destroyed (stable references), so hot code resolves once:
///
///   static obs::Counter& gates = obs::metrics().counter("sv.gates_applied");
///
/// reset() zeroes every value but keeps the registrations (and references).
class MetricsRegistry {
public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  void reset();

  struct HistogramSnapshot {
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

private:
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// The process-wide registry every layer records into.
[[nodiscard]] MetricsRegistry& metrics() noexcept;

/// Zero every instrument in the global registry (references stay valid).
void reset_metrics();

/// Flat JSON snapshot:
/// {"counters":{...},"gauges":{...},"histograms":{"x":{"count","sum","min","max"}}}.
[[nodiscard]] std::string export_metrics_json();

/// Write export_metrics_json() to `path`; false if the file cannot be opened.
bool write_metrics_json(const std::string& path);

/// Aligned text report (what the CLI prints for --metrics). Instruments that
/// never recorded a value are omitted.
[[nodiscard]] std::string format_metrics_report();

// ---- metric name catalog ----------------------------------------------------
//
// Every name the built-in stack emits, one place (mirrored in DESIGN.md §11
// and in the BENCH_JSON_OBS rows). Layer prefixes: lang.*, pipeline.*,
// executor.*, fusion.*, sv.*, density.*, mps.*, stab.*, backend.*.
namespace names {
// language front end
inline constexpr const char* kLangTokens = "lang.tokens";               // counter
inline constexpr const char* kLangStatements = "lang.statements";       // counter (top-level parsed)
inline constexpr const char* kLangStmtsExecuted = "lang.stmts_executed";// counter
inline constexpr const char* kLangBytecodeOps = "lang.bytecode_ops";    // counter (instructions emitted by lowering)
inline constexpr const char* kLangVmSteps = "lang.vm_steps";            // counter (instructions dispatched by the VM)
// compilation pipeline
inline constexpr const char* kPassesRun = "pipeline.passes_run";        // counter
inline constexpr const char* kPassWallMs = "pipeline.pass_ms";          // histogram
inline constexpr const char* kGatesRemoved = "pipeline.gates_removed";  // counter (size_before - size_after, when positive)
inline constexpr const char* kSwapsInserted = "pipeline.swaps_inserted";// counter
// executor
inline constexpr const char* kExecutorRuns = "executor.runs";           // counter
inline constexpr const char* kExecutorShots = "executor.shots";         // counter
inline constexpr const char* kTrajectories = "executor.trajectories";   // counter
inline constexpr const char* kShotsPerSec = "executor.shots_per_sec";   // gauge (latest run)
inline constexpr const char* kAutoStabilizer = "executor.auto_stabilizer";   // counter (--backend auto -> stabilizer)
inline constexpr const char* kAutoStatevector = "executor.auto_statevector"; // counter (--backend auto -> statevector)
inline constexpr const char* kExecutorBinds = "executor.binds";         // counter (parameter bindings executed via run_bound_batch)
inline constexpr const char* kExecutorBoundBatches = "executor.bound_batches"; // counter (run_bound_batch calls = pipeline preparations)
// runtime gate fusion
inline constexpr const char* kFusedBlocks = "fusion.blocks";            // counter
inline constexpr const char* kFusedGates = "fusion.gates_fused";        // counter
// statevector backend
inline constexpr const char* kSvGatesApplied = "sv.gates_applied";      // counter (fused blocks count as 1)
inline constexpr const char* kSvPeakBytes = "sv.peak_bytes";            // gauge (high-water, one state)
// statevector kernel dispatch (one increment per kernel invocation)
inline constexpr const char* kSvKernel1qDense = "sv.kernel.1q_dense";   // counter
inline constexpr const char* kSvKernel1qDiag = "sv.kernel.1q_diag";     // counter (Z/S/T/RZ/P shapes)
inline constexpr const char* kSvKernel1qPerm = "sv.kernel.1q_perm";     // counter (X/Y antidiagonal)
inline constexpr const char* kSvKernelCtrlDense = "sv.kernel.ctrl_dense"; // counter
inline constexpr const char* kSvKernelCtrlDiag = "sv.kernel.ctrl_diag"; // counter (CZ/CP/MCZ shapes)
inline constexpr const char* kSvKernelCtrlPerm = "sv.kernel.ctrl_perm"; // counter (CX/CCX/MCX shapes)
inline constexpr const char* kSvKernelKqDense = "sv.kernel.kq_dense";   // counter (fused dense blocks)
inline constexpr const char* kSvKernelKqDiag = "sv.kernel.kq_diag";     // counter (fused diagonal blocks)
inline constexpr const char* kSvKernelSimd = "sv.kernel.simd_dispatch"; // counter (kernels taken on a SIMD ISA)
// density backend
inline constexpr const char* kDensityGatesApplied = "density.gates_applied"; // counter
inline constexpr const char* kDensityPeakBytes = "density.peak_bytes";  // gauge
// mps backend
inline constexpr const char* kMpsGatesApplied = "mps.gates_applied";    // counter
inline constexpr const char* kMpsSvdTruncations = "mps.svd_truncations";// counter (lossy SVD splits)
inline constexpr const char* kMpsMaxBondDim = "mps.max_bond_dim";       // gauge (high-water)
inline constexpr const char* kMpsTruncationError = "mps.truncation_error"; // gauge (high-water)
// stabilizer backend
inline constexpr const char* kStabGatesApplied = "stab.gates_applied";  // counter
inline constexpr const char* kStabMeasurements = "stab.measurements";   // counter (resets included)
inline constexpr const char* kStabRandomOutcomes = "stab.random_outcomes"; // counter (rank-update branch)
inline constexpr const char* kStabPeakBytes = "stab.peak_bytes";        // gauge (one tableau, high-water)
// qutesd compile+run service
inline constexpr const char* kServiceRequests = "service.requests";     // counter
inline constexpr const char* kServiceCacheHits = "service.cache_hits";  // counter
inline constexpr const char* kServiceCacheMisses = "service.cache_misses"; // counter
inline constexpr const char* kServiceCompiles = "service.compiles";     // counter (single-flight: one per entry, not per requester)
inline constexpr const char* kServiceEvictions = "service.evictions";   // counter (LRU byte-budget evictions)
inline constexpr const char* kServiceCacheBytes = "service.cache_bytes"; // gauge (current accounted bytes)
inline constexpr const char* kServiceQueueDepth = "service.queue_depth"; // gauge (requests waiting for a worker)
inline constexpr const char* kServiceBatchedRequests = "service.batched_requests"; // counter (requests served from a >1 batch)
inline constexpr const char* kServiceBatchedShots = "service.batched_shots"; // counter (shots executed inside a >1 batch)
inline constexpr const char* kServiceRequestMs = "service.request_ms";  // histogram (per-request wall latency)
}  // namespace names

}  // namespace qutes::obs
