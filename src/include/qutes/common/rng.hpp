// Deterministic, fast pseudo-random number generation.
//
// Simulation results must be reproducible across runs given a seed, so the
// library owns its generator instead of relying on implementation-defined
// std::default_random_engine behaviour. The generator is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64 — the de-facto standard for
// non-cryptographic HPC workloads: 4 words of state, sub-nanosecond output,
// passes BigCrush.
#pragma once

#include <array>
#include <cstdint>

namespace qutes {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator, so it plugs
/// into <random> distributions when needed.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed0f5eedULL) noexcept { reseed(seed); }

  /// Counter-based stream: a deterministic function of (seed, stream) whose
  /// states are well separated across stream indices. Used to give every
  /// simulation shot its own generator — Rng(seed, shot) — so parallel
  /// trajectory loops stay bit-reproducible regardless of thread count or
  /// iteration order.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t s = seed;
    const std::uint64_t hashed = splitmix64(s);  // decorrelate from Rng(seed)
    s = hashed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    reseed(splitmix64(s));
  }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qutes
