// Content-addressed cache keys for compiled Qutes programs.
//
// The `.qbc` artifact loader (lang/bytecode.hpp) introduced the fnv1a64
// source hash; the qutesd compile cache needs the same idea one level up:
// a single 64-bit key identifying *(source text, canonical run config)*, so
// that a request whose key matches a cached entry can skip lex/parse/lower
// and the compilation pipeline entirely. This header owns both pieces:
//
//  * fnv1a64      — the FNV-1a 64-bit content hash (moved here from the
//    bytecode module; lang::fnv1a64 forwards for compatibility).
//  * canonical_run_config — a stable, human-readable canonical form of the
//    RunConfig fields that change what a compiled entry *is* or what a
//    request on it returns. Deliberately excluded: the seed (the whole point
//    of the per-shot Rng(seed, shot) streams is that one compiled entry
//    serves every seed), `parallel_shots` (counts are thread-invariant),
//    `record_memory` (response shape, not compiled content),
//    `bind_params`/`allow_unbound_params` (a cached entry is the *unbound*
//    artifact; every parameter binding replays against it, so values must
//    never cause a miss), and the echo/trace/replay/obs plumbing (per-call
//    I/O, not program identity).
//  * cache_key    — fnv1a64 over source + '\0' + canonical_run_config.
//
// Lives in qutes::common (not lang or service) so the language artifact
// cache, the service, tests, and benches all share one definition.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "qutes/run_config.hpp"

namespace qutes {

/// FNV-1a 64-bit content hash. The `.qbc` artifact's `source_hash` and the
/// service cache key are both built from this.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Canonical textual form of the config fields that distinguish cache
/// entries: pipeline preset (the preset *name* — RunConfig holds a
/// PassManager pointer, which has no stable identity across processes, so
/// the caller passes the name that built it; "" = no pipeline), backend
/// name and its tuning (bond dim, truncation threshold, fusion width),
/// exec mode, shots, stdlib inclusion, and the noise model. Two configs
/// canonicalize equal iff a compiled entry plus its sampled counts are
/// interchangeable between them (for any seed).
[[nodiscard]] std::string canonical_run_config(const RunConfig& config,
                                               std::string_view pipeline_preset);

/// The service cache key: fnv1a64 over `source` + '\0' +
/// canonical_run_config(config, pipeline_preset). Byte-identical sources
/// under equal canonical configs collide (that is the cache hit); any
/// difference in source bytes — including whitespace — or in a canonical
/// field keys distinctly. The seed never participates.
[[nodiscard]] std::uint64_t cache_key(std::string_view source,
                                      const RunConfig& config,
                                      std::string_view pipeline_preset = "");

}  // namespace qutes
