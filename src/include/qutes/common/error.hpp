// Error hierarchy shared by every Qutes-C++ layer.
//
// All exceptions thrown by the library derive from qutes::Error so that a
// host application can catch one type. Layer-specific subclasses carry the
// context a user needs to act on the failure (e.g. source location for
// language errors, qubit indices for simulator errors).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace qutes {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of an API precondition (bad qubit index, size mismatch, ...).
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised by the simulator layer (norm loss, measuring an impossible
/// outcome, resource exhaustion).
class SimulationError : public Error {
public:
  explicit SimulationError(const std::string& what) : Error(what) {}
};

/// Raised by the circuit layer (unknown gate arity, register overflow,
/// malformed QASM, ...).
class CircuitError : public Error {
public:
  explicit CircuitError(const std::string& what) : Error(what) {}
};

/// Location of a token/AST node in Qutes source code. Lines and columns are
/// 1-based; a zero line means "no location" (synthesized node).
struct SourceLocation {
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  [[nodiscard]] std::string to_string() const {
    if (!valid()) return "<builtin>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// Raised by the language front end (lex/parse/type/runtime errors in a
/// Qutes program). Carries the offending source location.
class LangError : public Error {
public:
  LangError(const std::string& what, SourceLocation loc)
      : Error(loc.valid() ? loc.to_string() + ": " + what : what), loc_(loc) {}

  [[nodiscard]] SourceLocation location() const noexcept { return loc_; }

private:
  SourceLocation loc_;
};

}  // namespace qutes
