// Bit-manipulation helpers used throughout the simulator and circuit layers.
//
// States are indexed little-endian: qubit 0 is the least-significant bit of
// the basis-state index (the Qiskit convention, so our QASM interoperates).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qutes {

/// Number of basis states spanned by `n` qubits (2^n).
[[nodiscard]] constexpr std::uint64_t dim_of(std::size_t n) noexcept {
  return std::uint64_t{1} << n;
}

/// True if bit `q` of `index` is set.
[[nodiscard]] constexpr bool test_bit(std::uint64_t index, std::size_t q) noexcept {
  return (index >> q) & 1ULL;
}

/// `index` with bit `q` set.
[[nodiscard]] constexpr std::uint64_t set_bit(std::uint64_t index, std::size_t q) noexcept {
  return index | (std::uint64_t{1} << q);
}

/// `index` with bit `q` cleared.
[[nodiscard]] constexpr std::uint64_t clear_bit(std::uint64_t index, std::size_t q) noexcept {
  return index & ~(std::uint64_t{1} << q);
}

/// `index` with bit `q` flipped.
[[nodiscard]] constexpr std::uint64_t flip_bit(std::uint64_t index, std::size_t q) noexcept {
  return index ^ (std::uint64_t{1} << q);
}

/// Insert a zero bit at position `q`, shifting higher bits left. Maps an
/// index over n-1 qubits to an index over n qubits whose bit q is 0 — the
/// core of strided single-qubit gate kernels.
[[nodiscard]] constexpr std::uint64_t insert_zero_bit(std::uint64_t index,
                                                      std::size_t q) noexcept {
  const std::uint64_t low_mask = (std::uint64_t{1} << q) - 1;
  return ((index & ~low_mask) << 1) | (index & low_mask);
}

/// Number of bits needed to represent `value` (at least 1).
[[nodiscard]] constexpr std::size_t bits_for(std::uint64_t value) noexcept {
  return value == 0 ? 1 : static_cast<std::size_t>(std::bit_width(value));
}

/// Render the low `n` bits of `index` as a bitstring, most-significant bit
/// first (so qubit n-1 prints leftmost, matching Qiskit's counts keys).
[[nodiscard]] inline std::string to_bitstring(std::uint64_t index, std::size_t n) {
  std::string s(n, '0');
  for (std::size_t q = 0; q < n; ++q) {
    if (test_bit(index, q)) s[n - 1 - q] = '1';
  }
  return s;
}

/// Parse a bitstring (MSB first) back into an index.
[[nodiscard]] inline std::uint64_t from_bitstring(const std::string& bits) {
  std::uint64_t v = 0;
  for (char c : bits) v = (v << 1) | static_cast<std::uint64_t>(c == '1');
  return v;
}

}  // namespace qutes
