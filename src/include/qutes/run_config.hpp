// qutes::RunConfig — the one run-options struct for the whole stack.
//
// Before this header, options lived in two overlapping structs with fuzzy
// ownership: `lang::RunOptions` (seed/echo/backend/bond-dim for the language
// front end) and `circ::ExecutionOptions` (the same backend knobs again, plus
// shots/noise/fusion for the executor), each validated in its own layer with
// its own error type. RunConfig collapses them: the compiler facade, the
// executor, every Backend, and the CLI all consume this struct end-to-end,
// and `validate()` is the single validation point (throws CircuitError; the
// language layer re-wraps into LangError so CLI diagnostics keep their
// source-located shape).
//
// Layout: run-identity knobs (shots/seed/...) at top level, subsystem knobs
// grouped in sub-structs —
//   * pipeline — the optional compilation PassManager,
//   * backend  — which simulation method and its tuning (fusion width,
//                bond dim, noise model),
//   * obs      — observability switches (tracing/metrics + export paths,
//                see qutes/obs/obs.hpp).
//
// The old names survive one release as deprecated aliases
// (`circ::ExecutionOptions`, `circ::ExecutorOptions`, `lang::RunOptions`);
// field spellings moved where noted on each member.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "qutes/sim/noise.hpp"

namespace qutes {

namespace circ {
class PassManager;
}  // namespace circ

/// Which engine executes the language front end (lang::run_source).
enum class ExecMode {
  /// Resolve at run time: the QUTES_EXEC_MODE environment variable ("vm" or
  /// "ast") if set and recognised, otherwise Vm. This is the CLI default, so
  /// `QUTES_EXEC_MODE=ast check.sh` can sweep a whole test suite through the
  /// tree-walk without touching per-call options.
  Default,
  /// Bytecode compiler + dispatch VM (lang/lower.hpp + lang/vm.hpp) — the
  /// fast path. Same Runtime underneath as the tree-walk, so outputs,
  /// circuits, and diagnostics are bit-identical.
  Vm,
  /// Tree-walking interpreter (lang/interpreter.hpp) — the differential
  /// reference. Also selected implicitly when `debug_trace` is set, since
  /// statement-level tracing is a tree-walk feature.
  Ast,
};

/// Compilation-pipeline stage (consumed by the executor before hand-off to
/// the backend, and by `lang::run_source` for the logged circuit).
struct PipelineConfig {
  /// Optional pass pipeline (e.g. circ::make_pipeline(Preset::Basis)) run
  /// over the circuit before execution. Not owned; must outlive the run.
  /// Per-pass instrumentation lands in ExecutionResult::pass_stats (and in
  /// the obs layer's pipeline.* metrics / pass.* spans).
  /// Was `ExecutionOptions::pipeline` / `RunOptions::pipeline`.
  const circ::PassManager* manager = nullptr;
};

/// Simulation-backend stage: which method runs the circuit, and its tuning.
struct BackendConfig {
  /// Backend name, looked up in the registry (circ/backend.hpp):
  /// "statevector" (dense, exact, ~30-qubit wall), "density" (exact mixed
  /// states, ~13 qubits), "mps" (tensor network; scales with entanglement,
  /// not qubit count), or "stabilizer" (Clifford-only phase tableau;
  /// thousands of qubits). "auto" defers the choice to the executor, which
  /// picks stabilizer for noiseless all-Clifford circuits and statevector
  /// otherwise. Unknown names fail validate() with a CircuitError listing
  /// the registry. Was the flat `backend` string.
  std::string name = "statevector";
  /// Widest runtime-fused block; 1 disables gate fusion (gate-at-a-time
  /// execution). Clamped to sim::MatrixN::kMaxQubits and to the backend's
  /// own capability cap. 5 matches the vectorized kernels' sweet spot (see
  /// FusionOptions). Was `ExecutionOptions::max_fused_qubits`.
  std::size_t max_fused_qubits = 5;
  /// Run the per-shot trajectory loop across OpenMP threads. Results are
  /// independent of the thread count either way.
  bool parallel_shots = true;
  /// MPS bond-dimension cap (must be >= 1; only the mps backend reads it).
  /// Exact simulation needs up to 2^(n/2), so a finite cap trades fidelity
  /// for tractability; ExecutionResult::truncation_error reports the loss.
  std::size_t max_bond_dim = 64;
  /// MPS relative SVD truncation threshold (see sim::MpsOptions).
  double truncation_threshold = 1e-12;
  /// Noise model applied by the backend (trajectory sampling on the
  /// statevector method, closed-form channels on density). Was the flat
  /// `ExecutionOptions::noise`.
  sim::NoiseModel noise;
};

/// Observability switches (qutes/obs/obs.hpp). The consumer that owns the
/// run boundary (the CLI, or a test harness) applies these: enables
/// tracing/metrics before the run and writes the exports after it.
struct ObsConfig {
  bool trace = false;            ///< record spans (--trace)
  bool metrics = false;          ///< record metric instruments (--metrics)
  std::string trace_path;        ///< Chrome-trace JSON destination ("" = none)
  std::string metrics_json_path; ///< metrics JSON destination ("" = none)
};

struct RunConfig {
  /// Number of sampled shots for executor runs (the language front end
  /// instead uses `replay_shots` below for its post-run experiment).
  std::size_t shots = 1024;
  std::uint64_t seed = 0x5eed0f5eedULL;
  /// Also record the per-shot bitstrings, in shot order (Aer "memory").
  bool record_memory = false;
  /// Language front end: mirror `print` output here (e.g. &std::cout).
  std::ostream* echo = nullptr;
  /// Language front end: statement-level debug trace destination. Was
  /// `RunOptions::trace` (renamed: `obs.trace` now means span tracing).
  std::ostream* debug_trace = nullptr;
  /// Language front end: load the Qutes standard library first.
  bool include_stdlib = true;
  /// Language front end: which engine runs the program (see ExecMode).
  ExecMode exec_mode = ExecMode::Default;
  /// Language front end: when > 0, re-run the logged (pipeline-lowered)
  /// circuit as a shots experiment on `backend.name` after the live run:
  /// every trajectory re-rolls every mid-circuit measurement, so the
  /// histogram shows the program's full outcome distribution, not just the
  /// live run's draw. Lands in RunResult::replay. Ignored when the program
  /// logged no qubits.
  std::size_t replay_shots = 0;
  /// Language front end: concrete values for the program's `param(...)`
  /// declarations, in declaration order (CLI `--bind v1,v2,...`). A program
  /// that declares more parameters than provided here fails with a LangError
  /// naming the parameter — unless `allow_unbound_params` is set.
  /// Run-identity data like seed: NOT part of qutes::cache_key's canonical
  /// config, so rebinding a cached program never causes a cache miss.
  std::vector<double> bind_params{};
  /// Let `param(...)` declarations beyond `bind_params` evaluate to 0.0
  /// instead of failing. The qutesd canonical compile uses this (mirroring
  /// its canonical-seed trick): the artifact is compiled once under
  /// placeholder bindings, and each request rebinds the lowered circuit.
  bool allow_unbound_params = false;

  PipelineConfig pipeline = {};
  BackendConfig backend = {};
  ObsConfig obs = {};

  /// The single validation point: checks the backend name against the
  /// registry and the numeric knobs' ranges. Throws CircuitError with the
  /// same messages every layer used to duplicate ("unknown backend ...",
  /// "max_bond_dim ..."). The executor and `lang::run_source` both call
  /// this; callers driving backends directly may call it early to fail
  /// before any work happens.
  void validate() const;
};

}  // namespace qutes
