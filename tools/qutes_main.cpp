// qutes — the command-line driver for Qutes programs.
//
//   qutes run program.qut [--seed N] [--stats] [--qasm out.qasm] [--draw]
//   qutes eval '<source>'  [same flags]
//
// `run` executes a .qut file; `eval` executes source given inline. Output of
// `print` statements goes to stdout; --qasm exports the compiled circuit,
// --draw renders ASCII art, --stats prints circuit metrics.
#include <cstring>
#include <sstream>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/qiskit_export.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/printer.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage:\n"
      << "  qutes run <file.qut>  [--seed N] [--stats] [--qasm FILE] [--qiskit FILE] [--draw] [--trace] [--replay N]\n"
      << "                        [--pipeline PRESET] [--dump-passes] [--backend NAME] [--max-bond-dim N]\n"
      << "  qutes eval '<source>' [same flags as run]\n"
      << "  qutes fmt <file.qut>            # print canonically formatted source\n"
      << "  qutes sim <file.qasm> [--shots N] [--seed N] [--pipeline PRESET] [--dump-passes]\n"
      << "                        [--backend NAME] [--max-bond-dim N]\n"
      << "\n"
      << "  --pipeline PRESET  compile through a PassManager preset: O0, O1, basis,\n"
      << "                     hardware (linear coupling). With run/eval the lowered\n"
      << "                     circuit is what --qasm/--qiskit/--draw/--replay see.\n"
      << "  --dump-passes      print the per-pass instrumentation table (name,\n"
      << "                     wall ms, depth/gates/2q before -> after); implies\n"
      << "                     --pipeline O1 unless one is given.\n"
      << "  --backend NAME     simulation backend for sim / --replay: statevector\n"
      << "                     (default, ~30 qubits), density (exact noise, ~13),\n"
      << "                     or mps (tensor network; scales with entanglement,\n"
      << "                     pair with --pipeline hardware for best layout).\n"
      << "  --max-bond-dim N   mps bond-dimension cap (default 64); larger is more\n"
      << "                     accurate on highly entangled states, smaller is faster.\n";
}

/// Validate a --backend argument against the registry; false (with a
/// message) on an unknown name.
bool parse_backend_flag(const std::string& value, std::string& out) {
  if (!qutes::circ::backend_known(value)) {
    std::cerr << "unknown backend: " << value << " (expected";
    const auto names = qutes::circ::backend_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::cerr << (i == 0 ? " " : ", ") << names[i];
    }
    std::cerr << ")\n";
    return false;
  }
  out = value;
  return true;
}

/// Parse --pipeline arguments ("--pipeline X" or "--pipeline=X"); returns
/// false (with a message) on an unknown preset.
bool parse_pipeline_flag(const std::string& value, std::optional<qutes::circ::Preset>& out) {
  const auto preset = qutes::circ::parse_preset(value);
  if (!preset) {
    std::cerr << "unknown pipeline preset: " << value
              << " (expected O0, O1, basis, or hardware)\n";
    return false;
  }
  out = *preset;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(std::cerr);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string target = argv[2];
  if (mode == "sim") {
    std::size_t shots = 1024;
    std::uint64_t sim_seed = 0x5eed0f5eedULL;
    std::optional<qutes::circ::Preset> preset;
    bool dump_passes = false;
    std::string backend = "statevector";
    std::size_t max_bond_dim = 64;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shots" && i + 1 < argc) {
        shots = std::stoul(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        sim_seed = std::stoull(argv[++i]);
      } else if (arg == "--pipeline" && i + 1 < argc) {
        if (!parse_pipeline_flag(argv[++i], preset)) return 2;
      } else if (arg.rfind("--pipeline=", 0) == 0) {
        if (!parse_pipeline_flag(arg.substr(11), preset)) return 2;
      } else if (arg == "--dump-passes") {
        dump_passes = true;
      } else if (arg == "--backend" && i + 1 < argc) {
        if (!parse_backend_flag(argv[++i], backend)) return 2;
      } else if (arg.rfind("--backend=", 0) == 0) {
        if (!parse_backend_flag(arg.substr(10), backend)) return 2;
      } else if (arg == "--max-bond-dim" && i + 1 < argc) {
        max_bond_dim = std::stoul(argv[++i]);
        if (max_bond_dim == 0) {
          std::cerr << "--max-bond-dim must be >= 1\n";
          return 2;
        }
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        return 2;
      }
    }
    if (dump_passes && !preset) preset = qutes::circ::Preset::O1;
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      const auto circuit = qutes::circ::qasm::import_circuit(buffer.str());
      qutes::circ::ExecutionOptions options;
      options.shots = shots;
      options.seed = sim_seed;
      options.backend = backend;
      options.max_bond_dim = max_bond_dim;
      qutes::circ::PassManager pipeline;
      if (preset) {
        pipeline = qutes::circ::make_pipeline(*preset);
        options.pipeline = &pipeline;
      }
      const auto result = qutes::circ::Executor(options).run(circuit);
      if (dump_passes) {
        qutes::circ::PropertySet dump;
        dump.stats = result.pass_stats;
        std::cerr << "--- passes (" << qutes::circ::preset_name(*preset)
                  << ") ---\n"
                  << qutes::circ::format_pass_table(dump);
      }
      std::cout << "qubits: " << circuit.num_qubits()
                << "  clbits: " << circuit.num_clbits()
                << "  shots: " << shots
                << "  backend: " << result.backend
                << (result.fast_path ? "  (static fast path)" : "  (trajectories)")
                << "\n";
      for (const auto& [bits, count] : result.counts) {
        std::cout << bits << ": " << count << "\n";
      }
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode == "fmt") {
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      qutes::lang::Program program = qutes::lang::parse(buffer.str());
      std::cout << qutes::lang::format_program(program);
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode != "run" && mode != "eval") {
    usage(std::cerr);
    return 2;
  }

  std::uint64_t seed = 0x5eed0f5eedULL;
  bool stats = false;
  bool draw = false;
  bool trace = false;
  bool dump_passes = false;
  std::optional<qutes::circ::Preset> preset;
  std::size_t replay_shots = 0;
  std::string backend = "statevector";
  std::size_t max_bond_dim = 64;
  std::string qasm_path;
  std::string qiskit_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--draw") {
      draw = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--dump-passes") {
      dump_passes = true;
    } else if (arg == "--pipeline" && i + 1 < argc) {
      if (!parse_pipeline_flag(argv[++i], preset)) return 2;
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      if (!parse_pipeline_flag(arg.substr(11), preset)) return 2;
    } else if (arg == "--qasm" && i + 1 < argc) {
      qasm_path = argv[++i];
    } else if (arg == "--qiskit" && i + 1 < argc) {
      qiskit_path = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_shots = std::stoul(argv[++i]);
    } else if (arg == "--backend" && i + 1 < argc) {
      if (!parse_backend_flag(argv[++i], backend)) return 2;
    } else if (arg.rfind("--backend=", 0) == 0) {
      if (!parse_backend_flag(arg.substr(10), backend)) return 2;
    } else if (arg == "--max-bond-dim" && i + 1 < argc) {
      max_bond_dim = std::stoul(argv[++i]);
      if (max_bond_dim == 0) {
        std::cerr << "--max-bond-dim must be >= 1\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (dump_passes && !preset) preset = qutes::circ::Preset::O1;

  try {
    qutes::circ::PassManager pipeline;
    qutes::lang::RunOptions options;
    options.seed = seed;
    options.echo = &std::cout;
    if (trace) options.trace = &std::cerr;
    if (preset) {
      pipeline = qutes::circ::make_pipeline(*preset);
      options.pipeline = &pipeline;
    }
    options.replay_shots = replay_shots;
    options.backend = backend;
    options.max_bond_dim = max_bond_dim;
    const qutes::lang::RunResult result =
        mode == "run" ? qutes::lang::run_file(target, options)
                      : qutes::lang::run_source(target, options);
    // With a pipeline, the lowered circuit is what every downstream flag
    // (--qasm, --qiskit, --draw, --replay, --stats) operates on.
    const qutes::circ::QuantumCircuit& circuit =
        preset ? result.lowered_circuit : result.circuit;

    if (dump_passes) {
      std::cerr << "--- passes (" << qutes::circ::preset_name(*preset)
                << ") ---\n"
                << qutes::circ::format_pass_table(result.properties);
    }
    if (!qasm_path.empty()) {
      std::ofstream out(qasm_path);
      if (!out) {
        std::cerr << "cannot write " << qasm_path << "\n";
        return 1;
      }
      out << qutes::circ::qasm::export_circuit(circuit);
      std::cerr << "wrote " << qasm_path << "\n";
    }
    if (!qiskit_path.empty()) {
      std::ofstream out(qiskit_path);
      if (!out) {
        std::cerr << "cannot write " << qiskit_path << "\n";
        return 1;
      }
      out << qutes::circ::qiskit::export_circuit(circuit);
      std::cerr << "wrote " << qiskit_path << "\n";
    }
    if (draw) {
      std::cerr << qutes::circ::draw(circuit);
    }
    if (result.replay) {
      std::cerr << "--- replay (" << replay_shots << " shots over "
                << circuit.num_clbits() << " clbits, backend "
                << result.replay->backend << ") ---\n";
      for (const auto& [bits, count] : result.replay->counts) {
        std::cerr << bits << ": " << count << "\n";
      }
    }
    if (stats) {
      // Without an explicit pipeline, show the legacy default (O1) numbers.
      const auto lowered =
          preset ? circuit : qutes::circ::transpile(result.circuit);
      std::cerr << "qubits:           " << result.num_qubits << "\n"
                << "instructions:     " << result.circuit.size() << "\n"
                << "depth:            " << result.circuit_depth << "\n"
                << "gates:            " << result.gate_count << "\n"
                << "transpiled depth: " << lowered.depth() << "\n"
                << "transpiled gates: " << lowered.gate_count() << "\n";
    }
    return 0;
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
