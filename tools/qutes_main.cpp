// qutes — the command-line driver for Qutes programs.
//
//   qutes run program.qut [--seed N] [--stats] [--qasm out.qasm] [--draw]
//   qutes eval '<source>'  [same flags]
//
// `run` executes a .qut file; `eval` executes source given inline. Output of
// `print` statements goes to stdout; --qasm exports the compiled circuit,
// --draw renders ASCII art, --stats prints circuit metrics.
//
// Observability (qutes::obs): --trace FILE writes a Chrome-trace JSON of the
// whole run (open in chrome://tracing or Perfetto), --metrics prints the
// metric report to stderr, --metrics-json FILE writes the raw snapshot. The
// statement-level language trace that --trace used to mean is now
// --debug-trace.
#include <algorithm>
#include <cstring>
#include <sstream>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/qiskit_export.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/printer.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/run_config.hpp"
#include "qutes/service/server.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage:\n"
      << "  qutes run <file.qut>  [--seed N] [--stats] [--qasm FILE] [--qiskit FILE] [--draw] [--debug-trace] [--replay N]\n"
      << "                        [--pipeline PRESET] [--dump-passes] [--backend NAME] [--max-bond-dim N]\n"
      << "                        [--exec-mode vm|ast] [--dump-bytecode] [--bind v1,v2,...]\n"
      << "                        [--trace FILE] [--metrics] [--metrics-json FILE]\n"
      << "  qutes eval '<source>' [same flags as run]\n"
      << "  qutes fmt <file.qut>            # print canonically formatted source\n"
      << "  qutes sim <file.qasm> [--shots N] [--seed N] [--pipeline PRESET] [--dump-passes]\n"
      << "                        [--backend NAME] [--max-bond-dim N] [--trace FILE] [--metrics] [--metrics-json FILE]\n"
      << "  qutes serve <socket>  [--workers N] [--cache-mb N] [--max-batch N] [--verbose]\n"
      << "                        [--trace FILE] [--metrics-json FILE]   # embed the qutesd daemon\n"
      << "\n"
      << "  --bind v1,v2,...   (run/eval) values for param(\"name\") declarations, in\n"
      << "                     declaration order. With --connect the values ride the\n"
      << "                     request's params field, so a parameter sweep reuses one\n"
      << "                     cached compile (params are not part of the cache key).\n"
      << "  --connect SOCKET   (run/eval) send the program to a running qutesd\n"
      << "                     instead of compiling locally: warm programs skip\n"
      << "                     the front end via the daemon's compile cache.\n"
      << "                     Prints the counts histogram (--replay N sets the\n"
      << "                     shot count; cache hit/miss goes to stderr).\n"
      << "  --pipeline PRESET  compile through a PassManager preset: O0, O1, basis,\n"
      << "                     hardware (linear coupling). With run/eval the lowered\n"
      << "                     circuit is what --qasm/--qiskit/--draw/--replay see.\n"
      << "  --dump-passes      print the per-pass instrumentation table (name,\n"
      << "                     wall ms, depth/gates/2q before -> after); implies\n"
      << "                     --pipeline O1 unless one is given.\n"
      << "  --backend NAME     simulation backend for sim / --replay: statevector\n"
      << "                     (default), density, mps, stabilizer (Clifford-only\n"
      << "                     tableau; thousands of qubits), or auto (stabilizer\n"
      << "                     when the circuit is all-Clifford, else statevector)\n"
      << "                     (default, ~30 qubits), density (exact noise, ~13),\n"
      << "                     or mps (tensor network; scales with entanglement,\n"
      << "                     pair with --pipeline hardware for best layout).\n"
      << "  --max-bond-dim N   mps bond-dimension cap (default 64); larger is more\n"
      << "                     accurate on highly entangled states, smaller is faster.\n"
      << "  --trace FILE       record spans across the whole stack and write a\n"
      << "                     Chrome-trace JSON (chrome://tracing / Perfetto).\n"
      << "  --metrics          print the metrics report (counters/gauges) to stderr.\n"
      << "  --metrics-json F   write the metrics snapshot as flat JSON.\n"
      << "  --debug-trace      statement-level language trace to stderr (was --trace).\n"
      << "                     Implies --exec-mode ast (tracing is per AST node).\n"
      << "  --exec-mode MODE   language engine: vm (bytecode compiler + dispatch\n"
      << "                     loop, the default) or ast (tree-walking reference).\n"
      << "                     Results are bit-identical; the QUTES_EXEC_MODE\n"
      << "                     environment variable sets the default.\n"
      << "  --dump-bytecode    print the lowered bytecode listing to stderr\n"
      << "                     (chunks, opcodes, constant pools) before running.\n";
}

/// Levenshtein edit distance, for did-you-mean flag suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// Report an unknown flag with the nearest known spelling (LangError-style
/// diagnostic instead of the old bare "unknown flag" line). Returns the exit
/// status for main.
int unknown_flag(const std::string& arg, const std::vector<std::string>& known) {
  // Compare on the flag name only ("--backend=x" suggests "--backend").
  const std::string name = arg.substr(0, arg.find('='));
  std::string best;
  std::size_t best_distance = std::string::npos;
  for (const std::string& candidate : known) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  std::cerr << "error: unknown flag '" << arg << "'";
  // Suggest only when plausibly a typo (within a third of the flag length).
  if (!best.empty() && best_distance <= std::max<std::size_t>(2, best.size() / 3)) {
    std::cerr << "; did you mean '" << best << "'?";
  }
  std::cerr << "\n";
  usage(std::cerr);
  return 2;
}

/// Validate a --backend argument against the registry ("auto" is resolved by
/// the executor, not the registry); false (with a message) on an unknown name.
bool parse_backend_flag(const std::string& value, std::string& out) {
  if (value != "auto" && !qutes::circ::backend_known(value)) {
    std::cerr << "unknown backend: " << value << " (expected";
    const auto names = qutes::circ::backend_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::cerr << (i == 0 ? " " : ", ") << names[i];
    }
    std::cerr << ", auto)\n";
    return false;
  }
  out = value;
  return true;
}

/// Parse --pipeline arguments ("--pipeline X" or "--pipeline=X"); returns
/// false (with a message) on an unknown preset.
bool parse_pipeline_flag(const std::string& value, std::optional<qutes::circ::Preset>& out) {
  const auto preset = qutes::circ::parse_preset(value);
  if (!preset) {
    std::cerr << "unknown pipeline preset: " << value
              << " (expected O0, O1, basis, or hardware)\n";
    return false;
  }
  out = *preset;
  return true;
}

/// Enable tracing/metrics before the run per the ObsConfig. Metrics are
/// implied by --trace so one flag yields the full picture.
void obs_begin(const qutes::ObsConfig& obs) {
  if (obs.trace) qutes::obs::set_tracing_enabled(true);
  if (obs.metrics) qutes::obs::set_metrics_enabled(true);
}

/// Write/print the requested exports after the run. Returns false if a file
/// could not be written.
bool obs_end(const qutes::ObsConfig& obs) {
  bool ok = true;
  if (!obs.trace_path.empty()) {
    if (qutes::obs::write_chrome_trace(obs.trace_path)) {
      std::cerr << "wrote " << obs.trace_path << "\n";
    } else {
      std::cerr << "cannot write " << obs.trace_path << "\n";
      ok = false;
    }
  }
  if (!obs.metrics_json_path.empty()) {
    if (qutes::obs::write_metrics_json(obs.metrics_json_path)) {
      std::cerr << "wrote " << obs.metrics_json_path << "\n";
    } else {
      std::cerr << "cannot write " << obs.metrics_json_path << "\n";
      ok = false;
    }
  }
  if (obs.metrics && obs.metrics_json_path.empty()) {
    std::cerr << "--- metrics ---\n" << qutes::obs::format_metrics_report();
  }
  return ok;
}

/// Try to consume one observability flag at argv[i]; advances i past a
/// consumed value argument. Returns true if the flag was recognized.
bool parse_obs_flag(int argc, char** argv, int& i, qutes::ObsConfig& obs) {
  const std::string arg = argv[i];
  if (arg == "--trace" && i + 1 < argc) {
    obs.trace = true;
    obs.metrics = true;  // a trace without its counters is half a picture
    obs.trace_path = argv[++i];
    return true;
  }
  if (arg == "--metrics") {
    obs.metrics = true;
    return true;
  }
  if (arg == "--metrics-json" && i + 1 < argc) {
    obs.metrics = true;
    obs.metrics_json_path = argv[++i];
    return true;
  }
  return false;
}

const std::vector<std::string> kSimFlags = {
    "--shots", "--seed", "--pipeline", "--dump-passes", "--backend",
    "--max-bond-dim", "--trace", "--metrics", "--metrics-json"};

const std::vector<std::string> kRunFlags = {
    "--seed", "--stats", "--draw", "--debug-trace", "--dump-passes",
    "--pipeline", "--qasm", "--qiskit", "--replay", "--backend",
    "--max-bond-dim", "--exec-mode", "--dump-bytecode", "--trace",
    "--metrics", "--metrics-json", "--connect", "--bind"};

/// Parse a --bind argument: comma-separated doubles in parameter-declaration
/// order. Returns false (with a message) on malformed input.
bool parse_bind_flag(const std::string& value, std::vector<double>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string token = value.substr(pos, comma - pos);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      out.push_back(v);
    } catch (const std::exception&) {
      std::cerr << "--bind expects comma-separated numbers, got '" << token
                << "' in '" << value << "'\n";
      return false;
    }
    pos = comma + 1;
  }
  return true;
}

/// Validate an --exec-mode argument; false (with a message) on anything
/// other than the two engine names.
bool parse_exec_mode_flag(const std::string& value, qutes::ExecMode& mode) {
  if (value == "vm") {
    mode = qutes::ExecMode::Vm;
    return true;
  }
  if (value == "ast") {
    mode = qutes::ExecMode::Ast;
    return true;
  }
  std::cerr << "unknown exec mode '" << value << "' (expected vm or ast)\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(std::cerr);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string target = argv[2];
  if (mode == "sim") {
    qutes::RunConfig config;
    std::optional<qutes::circ::Preset> preset;
    bool dump_passes = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shots" && i + 1 < argc) {
        config.shots = std::stoul(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        config.seed = std::stoull(argv[++i]);
      } else if (arg == "--pipeline" && i + 1 < argc) {
        if (!parse_pipeline_flag(argv[++i], preset)) return 2;
      } else if (arg.rfind("--pipeline=", 0) == 0) {
        if (!parse_pipeline_flag(arg.substr(11), preset)) return 2;
      } else if (arg == "--dump-passes") {
        dump_passes = true;
      } else if (arg == "--backend" && i + 1 < argc) {
        if (!parse_backend_flag(argv[++i], config.backend.name)) return 2;
      } else if (arg.rfind("--backend=", 0) == 0) {
        if (!parse_backend_flag(arg.substr(10), config.backend.name)) return 2;
      } else if (arg == "--max-bond-dim" && i + 1 < argc) {
        config.backend.max_bond_dim = std::stoul(argv[++i]);
        if (config.backend.max_bond_dim == 0) {
          std::cerr << "--max-bond-dim must be >= 1\n";
          return 2;
        }
      } else if (parse_obs_flag(argc, argv, i, config.obs)) {
        // handled
      } else {
        return unknown_flag(arg, kSimFlags);
      }
    }
    if (dump_passes && !preset) preset = qutes::circ::Preset::O1;
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      obs_begin(config.obs);
      const auto circuit = qutes::circ::qasm::import_circuit(buffer.str());
      qutes::circ::PassManager pipeline;
      if (preset) {
        pipeline = qutes::circ::make_pipeline(*preset);
        config.pipeline.manager = &pipeline;
      }
      const auto result = qutes::circ::Executor(config).run(circuit);
      if (dump_passes) {
        qutes::circ::PropertySet dump;
        dump.stats = result.pass_stats;
        std::cerr << "--- passes (" << qutes::circ::preset_name(*preset)
                  << ") ---\n"
                  << qutes::circ::format_pass_table(dump);
      }
      std::cout << "qubits: " << circuit.num_qubits()
                << "  clbits: " << circuit.num_clbits()
                << "  shots: " << config.shots
                << "  backend: " << result.backend
                << (result.fast_path ? "  (static fast path)" : "  (trajectories)")
                << "\n";
      for (const auto& [bits, count] : result.counts) {
        std::cout << bits << ": " << count << "\n";
      }
      return obs_end(config.obs) ? 0 : 1;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode == "fmt") {
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      qutes::lang::Program program = qutes::lang::parse(buffer.str());
      std::cout << qutes::lang::format_program(program);
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode == "serve") {
    qutes::service::ServerOptions options;
    options.socket_path = target;
    std::string metrics_json_path;
    std::string trace_path;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--workers" && i + 1 < argc) {
        options.service.workers = std::stoul(argv[++i]);
      } else if (arg == "--cache-mb" && i + 1 < argc) {
        options.service.cache_bytes = std::stoul(argv[++i]) * (1u << 20);
      } else if (arg == "--max-batch" && i + 1 < argc) {
        options.service.max_batch =
            std::max<std::size_t>(1, std::stoul(argv[++i]));
      } else if (arg == "--verbose") {
        options.verbose = true;
      } else if (arg == "--metrics-json" && i + 1 < argc) {
        metrics_json_path = argv[++i];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path = argv[++i];
      } else {
        return unknown_flag(arg, {"--workers", "--cache-mb", "--max-batch",
                                  "--verbose", "--metrics-json", "--trace"});
      }
    }
    qutes::obs::set_metrics_enabled(true);
    if (!trace_path.empty()) qutes::obs::set_tracing_enabled(true);
    const int code = qutes::service::run_daemon(options);
    if (!metrics_json_path.empty() &&
        !qutes::obs::write_metrics_json(metrics_json_path)) {
      std::cerr << "cannot write " << metrics_json_path << "\n";
      return 1;
    }
    if (!trace_path.empty() && !qutes::obs::write_chrome_trace(trace_path)) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    return code;
  }
  if (mode != "run" && mode != "eval") {
    usage(std::cerr);
    return 2;
  }

  qutes::RunConfig config;
  bool stats = false;
  bool draw = false;
  bool dump_passes = false;
  bool dump_bytecode = false;
  std::optional<qutes::circ::Preset> preset;
  std::string qasm_path;
  std::string qiskit_path;
  std::string connect_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      config.seed = std::stoull(argv[++i]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--draw") {
      draw = true;
    } else if (arg == "--debug-trace") {
      config.debug_trace = &std::cerr;
    } else if (arg == "--dump-passes") {
      dump_passes = true;
    } else if (arg == "--pipeline" && i + 1 < argc) {
      if (!parse_pipeline_flag(argv[++i], preset)) return 2;
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      if (!parse_pipeline_flag(arg.substr(11), preset)) return 2;
    } else if (arg == "--qasm" && i + 1 < argc) {
      qasm_path = argv[++i];
    } else if (arg == "--qiskit" && i + 1 < argc) {
      qiskit_path = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      config.replay_shots = std::stoul(argv[++i]);
    } else if (arg == "--backend" && i + 1 < argc) {
      if (!parse_backend_flag(argv[++i], config.backend.name)) return 2;
    } else if (arg.rfind("--backend=", 0) == 0) {
      if (!parse_backend_flag(arg.substr(10), config.backend.name)) return 2;
    } else if (arg == "--max-bond-dim" && i + 1 < argc) {
      config.backend.max_bond_dim = std::stoul(argv[++i]);
      if (config.backend.max_bond_dim == 0) {
        std::cerr << "--max-bond-dim must be >= 1\n";
        return 2;
      }
    } else if (arg == "--exec-mode" && i + 1 < argc) {
      if (!parse_exec_mode_flag(argv[++i], config.exec_mode)) return 2;
    } else if (arg.rfind("--exec-mode=", 0) == 0) {
      if (!parse_exec_mode_flag(arg.substr(12), config.exec_mode)) return 2;
    } else if (arg == "--dump-bytecode") {
      dump_bytecode = true;
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--bind" && i + 1 < argc) {
      if (!parse_bind_flag(argv[++i], config.bind_params)) return 2;
    } else if (arg.rfind("--bind=", 0) == 0) {
      if (!parse_bind_flag(arg.substr(7), config.bind_params)) return 2;
    } else if (parse_obs_flag(argc, argv, i, config.obs)) {
      // handled
    } else {
      return unknown_flag(arg, kRunFlags);
    }
  }
  if (dump_passes && !preset) preset = qutes::circ::Preset::O1;

  if (!connect_path.empty()) {
    // Client mode: ship the program to a running qutesd instead of compiling
    // locally. The daemon's "run" op samples the compiled circuit (the
    // --replay semantics), so --replay N sets the shot count here.
    try {
      qutes::service::Request request;
      request.op = "run";
      if (mode == "run") {
        std::ifstream file(target);
        if (!file) {
          std::cerr << "cannot open " << target << "\n";
          return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        request.source = buffer.str();
      } else {
        request.source = target;
      }
      request.seed = config.seed;
      request.params = config.bind_params;
      if (config.replay_shots > 0) request.shots = config.replay_shots;
      request.backend = config.backend.name;
      if (preset) request.pipeline = qutes::circ::preset_name(*preset);
      request.exec = config.exec_mode == qutes::ExecMode::Ast ? "ast" : "vm";
      const qutes::service::Response response =
          qutes::service::request_over_socket(connect_path, request);
      if (!response.ok) {
        std::cerr << "error: " << response.error << "\n";
        return 1;
      }
      std::cerr << "qutesd: cache " << response.cache << ", backend "
                << response.backend << ", " << response.elapsed_ms << " ms\n";
      if (!response.output.empty()) std::cout << response.output;
      for (const auto& [bits, count] : response.counts) {
        std::cout << bits << ": " << count << "\n";
      }
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }

  try {
    obs_begin(config.obs);
    qutes::circ::PassManager pipeline;
    config.echo = &std::cout;
    if (preset) {
      pipeline = qutes::circ::make_pipeline(*preset);
      config.pipeline.manager = &pipeline;
    }
    if (dump_bytecode) {
      std::string source = target;
      if (mode == "run") {
        std::ifstream file(target);
        if (!file) {
          std::cerr << "cannot open " << target << "\n";
          return 1;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        source = buffer.str();
      }
      std::cerr << qutes::lang::lower_source(source, config.include_stdlib)
                       .disassemble();
    }
    const qutes::lang::RunResult result =
        mode == "run" ? qutes::lang::run_file(target, config)
                      : qutes::lang::run_source(target, config);
    // With a pipeline, the lowered circuit is what every downstream flag
    // (--qasm, --qiskit, --draw, --replay, --stats) operates on.
    const qutes::circ::QuantumCircuit& circuit =
        preset ? result.lowered_circuit : result.circuit;

    if (dump_passes) {
      std::cerr << "--- passes (" << qutes::circ::preset_name(*preset)
                << ") ---\n"
                << qutes::circ::format_pass_table(result.properties);
    }
    if (!qasm_path.empty()) {
      std::ofstream out(qasm_path);
      if (!out) {
        std::cerr << "cannot write " << qasm_path << "\n";
        return 1;
      }
      out << qutes::circ::qasm::export_circuit(circuit);
      std::cerr << "wrote " << qasm_path << "\n";
    }
    if (!qiskit_path.empty()) {
      std::ofstream out(qiskit_path);
      if (!out) {
        std::cerr << "cannot write " << qiskit_path << "\n";
        return 1;
      }
      out << qutes::circ::qiskit::export_circuit(circuit);
      std::cerr << "wrote " << qiskit_path << "\n";
    }
    if (draw) {
      std::cerr << qutes::circ::draw(circuit);
    }
    if (result.replay) {
      std::cerr << "--- replay (" << config.replay_shots << " shots over "
                << circuit.num_clbits() << " clbits, backend "
                << result.replay->backend << ") ---\n";
      for (const auto& [bits, count] : result.replay->counts) {
        std::cerr << bits << ": " << count << "\n";
      }
    }
    if (stats) {
      // Without an explicit pipeline, show the default (O1) preset numbers
      // (what the deprecated transpile() free function used to run).
      qutes::circ::QuantumCircuit o1_lowered;
      if (!preset) {
        o1_lowered = qutes::circ::make_pipeline(qutes::circ::Preset::O1)
                         .run(result.circuit);
      }
      const qutes::circ::QuantumCircuit& lowered = preset ? circuit : o1_lowered;
      std::cerr << "qubits:           " << result.num_qubits << "\n"
                << "instructions:     " << result.circuit.size() << "\n"
                << "depth:            " << result.circuit_depth << "\n"
                << "gates:            " << result.gate_count << "\n"
                << "transpiled depth: " << lowered.depth() << "\n"
                << "transpiled gates: " << lowered.gate_count() << "\n";
    }
    return obs_end(config.obs) ? 0 : 1;
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
