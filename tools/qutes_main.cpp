// qutes — the command-line driver for Qutes programs.
//
//   qutes run program.qut [--seed N] [--stats] [--qasm out.qasm] [--draw]
//   qutes eval '<source>'  [same flags]
//
// `run` executes a .qut file; `eval` executes source given inline. Output of
// `print` statements goes to stdout; --qasm exports the compiled circuit,
// --draw renders ASCII art, --stats prints circuit metrics.
#include <cstring>
#include <sstream>
#include <fstream>
#include <iostream>
#include <string>

#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/qiskit_export.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/printer.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage:\n"
      << "  qutes run <file.qut>  [--seed N] [--stats] [--qasm FILE] [--qiskit FILE] [--draw] [--trace] [--replay N]\n"
      << "  qutes eval '<source>' [--seed N] [--stats] [--qasm FILE] [--qiskit FILE] [--draw] [--trace] [--replay N]\n"
      << "  qutes fmt <file.qut>            # print canonically formatted source\n"
      << "  qutes sim <file.qasm> [--shots N] [--seed N]   # run an OpenQASM circuit\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage(std::cerr);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string target = argv[2];
  if (mode == "sim") {
    std::size_t shots = 1024;
    std::uint64_t sim_seed = 0x5eed0f5eedULL;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shots" && i + 1 < argc) {
        shots = std::stoul(argv[++i]);
      } else if (arg == "--seed" && i + 1 < argc) {
        sim_seed = std::stoull(argv[++i]);
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        return 2;
      }
    }
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      const auto circuit = qutes::circ::qasm::import_circuit(buffer.str());
      qutes::circ::ExecutionOptions options;
      options.shots = shots;
      options.seed = sim_seed;
      const auto result = qutes::circ::Executor(options).run(circuit);
      std::cout << "qubits: " << circuit.num_qubits()
                << "  clbits: " << circuit.num_clbits()
                << "  shots: " << shots
                << (result.fast_path ? "  (static fast path)" : "  (trajectories)")
                << "\n";
      for (const auto& [bits, count] : result.counts) {
        std::cout << bits << ": " << count << "\n";
      }
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode == "fmt") {
    try {
      std::ifstream file(target);
      if (!file) {
        std::cerr << "cannot open " << target << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      qutes::lang::Program program = qutes::lang::parse(buffer.str());
      std::cout << qutes::lang::format_program(program);
      return 0;
    } catch (const qutes::Error& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  if (mode != "run" && mode != "eval") {
    usage(std::cerr);
    return 2;
  }

  std::uint64_t seed = 0x5eed0f5eedULL;
  bool stats = false;
  bool draw = false;
  bool trace = false;
  std::size_t replay_shots = 0;
  std::string qasm_path;
  std::string qiskit_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--draw") {
      draw = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--qasm" && i + 1 < argc) {
      qasm_path = argv[++i];
    } else if (arg == "--qiskit" && i + 1 < argc) {
      qiskit_path = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_shots = std::stoul(argv[++i]);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  try {
    qutes::lang::RunOptions options;
    options.seed = seed;
    options.echo = &std::cout;
    if (trace) options.trace = &std::cerr;
    const qutes::lang::RunResult result =
        mode == "run" ? qutes::lang::run_file(target, options)
                      : qutes::lang::run_source(target, options);

    if (!qasm_path.empty()) {
      std::ofstream out(qasm_path);
      if (!out) {
        std::cerr << "cannot write " << qasm_path << "\n";
        return 1;
      }
      out << qutes::circ::qasm::export_circuit(result.circuit);
      std::cerr << "wrote " << qasm_path << "\n";
    }
    if (!qiskit_path.empty()) {
      std::ofstream out(qiskit_path);
      if (!out) {
        std::cerr << "cannot write " << qiskit_path << "\n";
        return 1;
      }
      out << qutes::circ::qiskit::export_circuit(result.circuit);
      std::cerr << "wrote " << qiskit_path << "\n";
    }
    if (draw) {
      std::cerr << qutes::circ::draw(result.circuit);
    }
    if (replay_shots > 0) {
      // Re-run the logged circuit as a shots experiment: each trajectory
      // re-rolls every mid-circuit measurement, so the histogram shows the
      // program's full outcome distribution, not just the live run's.
      qutes::circ::ExecutionOptions exec_options;
      exec_options.shots = replay_shots;
      exec_options.seed = seed + 1;
      const auto replay = qutes::circ::Executor(exec_options).run(result.circuit);
      std::cerr << "--- replay (" << replay_shots << " shots over "
                << result.circuit.num_clbits() << " clbits) ---\n";
      for (const auto& [bits, count] : replay.counts) {
        std::cerr << bits << ": " << count << "\n";
      }
    }
    if (stats) {
      const auto transpiled = qutes::circ::transpile(result.circuit);
      std::cerr << "qubits:           " << result.num_qubits << "\n"
                << "instructions:     " << result.circuit.size() << "\n"
                << "depth:            " << result.circuit_depth << "\n"
                << "gates:            " << result.gate_count << "\n"
                << "transpiled depth: " << transpiled.depth() << "\n"
                << "transpiled gates: " << transpiled.gate_count() << "\n";
    }
    return 0;
  } catch (const qutes::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
