// qutesd — the long-lived Qutes compile+run daemon.
//
// Serves newline-delimited JSON requests (service/protocol.hpp) over an
// AF_UNIX socket: programs compile once into a content-addressed LRU cache,
// warm requests skip the whole front end, and same-program shot requests
// batch into one shared execution. SIGTERM/SIGINT (or an {"op":"shutdown"}
// request) triggers a graceful drain: in-flight requests finish, then the
// socket is unlinked and the process exits 0.
//
//   qutesd --socket /tmp/qutesd.sock [--workers N] [--cache-mb N]
//          [--metrics-json FILE] [--trace FILE] [--verbose]
//
// Talk to it with `qutes run prog.qut --connect /tmp/qutesd.sock` or any
// NDJSON client:
//   printf '{"op":"run","source":"qubit q; h q; print q;"}\n' | nc -U ...
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "qutes/obs/obs.hpp"
#include "qutes/service/server.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: qutesd --socket PATH [options]\n"
      << "\n"
      << "  --socket PATH        AF_UNIX socket path to listen on (required)\n"
      << "  --workers N          request worker threads (default: min(cores, 4))\n"
      << "  --cache-mb N         compile-cache budget in MiB (default 64)\n"
      << "  --max-batch N        largest same-program batch (default 64)\n"
      << "  --metrics-json FILE  write a metrics snapshot at shutdown\n"
      << "  --trace FILE         write a Chrome trace at shutdown\n"
      << "  --verbose            log connections and shutdown stages\n"
      << "  --help               this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  qutes::service::ServerOptions options;
  std::string metrics_json_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      options.service.workers = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      options.service.cache_bytes =
          std::strtoul(argv[++i], nullptr, 10) * (1u << 20);
    } else if (arg == "--max-batch" && i + 1 < argc) {
      options.service.max_batch =
          std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::cerr << "qutesd: unknown argument \"" << arg << "\"\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "qutesd: --socket PATH is required\n";
    print_usage(std::cerr);
    return 2;
  }

  // The daemon always meters itself (counters are near-free); tracing only
  // when an export destination was given.
  qutes::obs::set_metrics_enabled(true);
  if (!trace_path.empty()) qutes::obs::set_tracing_enabled(true);

  const int code = qutes::service::run_daemon(options);

  if (!metrics_json_path.empty() &&
      !qutes::obs::write_metrics_json(metrics_json_path)) {
    std::cerr << "qutesd: cannot write metrics to " << metrics_json_path
              << "\n";
    return 1;
  }
  if (!trace_path.empty() && !qutes::obs::write_chrome_trace(trace_path)) {
    std::cerr << "qutesd: cannot write trace to " << trace_path << "\n";
    return 1;
  }
  return code;
}
