// qutesd service-layer suite: cache key canonicalization, compile-cache LRU
// + single-flight, batched executor bit-identity, Service request handling
// (cache hit/miss, auto-backend pinning, batching), the NDJSON protocol, and
// an in-process socket round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/cache_key.hpp"
#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/service/compile_cache.hpp"
#include "qutes/service/json.hpp"
#include "qutes/service/protocol.hpp"
#include "qutes/service/server.hpp"
#include "qutes/service/service.hpp"

namespace {

using namespace qutes;

// ---- cache key --------------------------------------------------------------

TEST(CacheKey, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(CacheKey, LangForwarderMatchesSharedImplementation) {
  const std::string source = "qubit q = |+>; print q;";
  EXPECT_EQ(lang::fnv1a64(source), fnv1a64(source));
}

TEST(CacheKey, DistinctConfigsKeyDistinctly) {
  const std::string source = "qubit q = |+>; print q;";
  RunConfig base;
  const std::uint64_t base_key = cache_key(source, base);

  RunConfig backend = base;
  backend.backend.name = "mps";
  EXPECT_NE(cache_key(source, backend), base_key);

  RunConfig exec = base;
  exec.exec_mode = ExecMode::Ast;
  EXPECT_NE(cache_key(source, exec), base_key);

  RunConfig shots = base;
  shots.shots = base.shots + 1;
  EXPECT_NE(cache_key(source, shots), base_key);

  RunConfig stdlib = base;
  stdlib.include_stdlib = !base.include_stdlib;
  EXPECT_NE(cache_key(source, stdlib), base_key);

  RunConfig bond = base;
  bond.backend.max_bond_dim = 8;
  EXPECT_NE(cache_key(source, bond), base_key);

  RunConfig noise = base;
  noise.backend.noise.depolarizing_1q = 0.01;
  EXPECT_NE(cache_key(source, noise), base_key);

  EXPECT_NE(cache_key(source, base, "o1"), base_key);
  EXPECT_NE(cache_key(source, base, "o1"), cache_key(source, base, "basis"));
  EXPECT_NE(cache_key(source + " ", base), base_key);
}

TEST(CacheKey, SeedAndPerRequestKnobsDoNotChangeTheKey) {
  const std::string source = "qubit q = |+>; print q;";
  RunConfig base;
  const std::uint64_t base_key = cache_key(source, base);

  RunConfig seeded = base;
  seeded.seed = 1234567;
  EXPECT_EQ(cache_key(source, seeded), base_key);

  RunConfig memory = base;
  memory.record_memory = true;
  EXPECT_EQ(cache_key(source, memory), base_key);

  RunConfig serial = base;
  serial.backend.parallel_shots = false;
  EXPECT_EQ(cache_key(source, serial), base_key);
}

TEST(CacheKey, CanonicalStringNamesEveryKeyedKnob) {
  RunConfig config;
  config.backend.name = "auto";
  config.shots = 7;
  const std::string canonical = canonical_run_config(config, "o1");
  EXPECT_NE(canonical.find("pipeline=o1"), std::string::npos);
  EXPECT_NE(canonical.find("backend=auto"), std::string::npos);
  EXPECT_NE(canonical.find("shots=7"), std::string::npos);
  EXPECT_NE(canonical.find("noise="), std::string::npos);
}

// ---- compile cache ----------------------------------------------------------

std::shared_ptr<const service::CompiledProgram> make_entry(std::uint64_t key,
                                                           std::size_t bytes) {
  auto program = std::make_shared<service::CompiledProgram>();
  program->key = key;
  program->bytes = bytes;
  return program;
}

TEST(CompileCache, HitsSkipTheCompiler) {
  service::CompileCache cache(1u << 20);
  int compiles = 0;
  const auto compile = [&] {
    ++compiles;
    return make_entry(1, 100);
  };
  const auto first = cache.get_or_compile(1, compile);
  EXPECT_FALSE(first.hit);
  const auto second = cache.get_or_compile(1, compile);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(first.program.get(), second.program.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
}

TEST(CompileCache, EvictsLeastRecentlyUsedPastTheByteBudget) {
  service::CompileCache cache(250);  // fits two 100-byte entries
  (void)cache.get_or_compile(1, [&] { return make_entry(1, 100); });
  (void)cache.get_or_compile(2, [&] { return make_entry(2, 100); });
  // Touch 1 so 2 is the LRU victim.
  (void)cache.get_or_compile(1, [&] { return make_entry(1, 100); });
  (void)cache.get_or_compile(3, [&] { return make_entry(3, 100); });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 200u);
  EXPECT_NE(cache.peek(1), nullptr);
  EXPECT_EQ(cache.peek(2), nullptr);
  EXPECT_NE(cache.peek(3), nullptr);
}

TEST(CompileCache, OversizedNewestEntrySurvivesAlone) {
  service::CompileCache cache(50);
  (void)cache.get_or_compile(1, [&] { return make_entry(1, 40); });
  (void)cache.get_or_compile(2, [&] { return make_entry(2, 400); });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
}

TEST(CompileCache, SingleFlightCompilesOnceUnderContention) {
  service::CompileCache cache(1u << 20);
  std::atomic<int> compiles{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const service::CompiledProgram>> seen(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto got = cache.get_or_compile(42, [&] {
        compiles.fetch_add(1);
        // Hold the flight open long enough for every thread to join it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return make_entry(42, 10);
      });
      seen[t] = got.program;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(cache.stats().compiles, 1u);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t].get(), seen[0].get());
}

TEST(CompileCache, FailedCompilesPropagateAndAreNotCached) {
  service::CompileCache cache(1u << 20);
  EXPECT_THROW(
      (void)cache.get_or_compile(
          7, [&]() -> std::shared_ptr<const service::CompiledProgram> {
            throw service::ServiceError("boom");
          }),
      service::ServiceError);
  EXPECT_EQ(cache.peek(7), nullptr);
  // The next attempt retries and can succeed.
  const auto got = cache.get_or_compile(7, [&] { return make_entry(7, 10); });
  EXPECT_FALSE(got.hit);
  EXPECT_NE(got.program, nullptr);
}

// ---- batched executor -------------------------------------------------------

circ::QuantumCircuit ghz_circuit(std::size_t n) {
  circ::QuantumCircuit circ(n, n);
  circ.h(0);
  for (std::size_t q = 1; q < n; ++q) circ.cx(q - 1, q);
  for (std::size_t q = 0; q < n; ++q) circ.measure(q, q);
  return circ;
}

circ::QuantumCircuit dynamic_circuit() {
  // Mid-circuit measurement feeding a condition: forces the trajectory path.
  circ::QuantumCircuit circ(2, 2);
  circ.h(0);
  circ.measure(0, 0);
  circ.x(1).c_if(0, 1);
  circ.measure(1, 1);
  return circ;
}

void expect_batch_matches_sequential(const circ::QuantumCircuit& circuit,
                                     const RunConfig& config) {
  std::vector<circ::ShotBatchItem> items;
  for (std::uint64_t seed : {7ULL, 8ULL, 9ULL, 12345ULL}) {
    circ::ShotBatchItem item;
    item.seed = seed;
    item.shots = 200;
    item.record_memory = true;
    items.push_back(item);
  }
  const std::vector<circ::ExecutionResult> batched =
      circ::Executor(config).run_batch(circuit, items);
  ASSERT_EQ(batched.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    RunConfig solo = config;
    solo.seed = items[i].seed;
    solo.shots = items[i].shots;
    solo.record_memory = true;
    const circ::ExecutionResult expected = circ::Executor(solo).run(circuit);
    EXPECT_EQ(batched[i].counts, expected.counts) << "item " << i;
    EXPECT_EQ(batched[i].memory, expected.memory) << "item " << i;
    EXPECT_EQ(batched[i].backend, expected.backend) << "item " << i;
  }
}

TEST(RunBatch, StatevectorFastPathBitIdenticalToSequential) {
  RunConfig config;
  expect_batch_matches_sequential(ghz_circuit(5), config);
}

TEST(RunBatch, BitIdenticalAcrossThreadCounts) {
  // parallel_shots toggles the OpenMP split; counts must not move.
  RunConfig parallel;
  parallel.backend.parallel_shots = true;
  RunConfig serial;
  serial.backend.parallel_shots = false;
  expect_batch_matches_sequential(dynamic_circuit(), parallel);
  expect_batch_matches_sequential(dynamic_circuit(), serial);
  const std::vector<circ::ShotBatchItem> items(3, circ::ShotBatchItem{11, 400, false});
  const auto a = circ::Executor(parallel).run_batch(dynamic_circuit(), items);
  const auto b = circ::Executor(serial).run_batch(dynamic_circuit(), items);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(a[i].counts, b[i].counts);
  }
}

TEST(RunBatch, DynamicAndNonStatevectorBackendsUseThePerItemPath) {
  RunConfig stab;
  stab.backend.name = "stabilizer";
  expect_batch_matches_sequential(ghz_circuit(6), stab);
  RunConfig mps;
  mps.backend.name = "mps";
  expect_batch_matches_sequential(ghz_circuit(4), mps);
}

TEST(RunBatch, EmptyItemListReturnsEmpty) {
  RunConfig config;
  EXPECT_TRUE(circ::Executor(config).run_batch(ghz_circuit(2), {}).empty());
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, RequestRoundTrip) {
  service::Request request;
  request.op = "run";
  request.id = "r-1";
  request.source = "qubit q = |+>;\nprint q;";
  request.shots = 64;
  request.seed = 99;
  request.backend = "auto";
  request.pipeline = "o1";
  request.exec = "ast";
  request.record_memory = true;
  const service::Request parsed =
      service::parse_request(service::serialize_request(request));
  EXPECT_EQ(parsed.op, request.op);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.source, request.source);
  EXPECT_EQ(parsed.shots, request.shots);
  EXPECT_EQ(parsed.seed, request.seed);
  EXPECT_EQ(parsed.backend, request.backend);
  EXPECT_EQ(parsed.pipeline, request.pipeline);
  EXPECT_EQ(parsed.exec, request.exec);
  EXPECT_EQ(parsed.record_memory, request.record_memory);
}

TEST(Protocol, ResponseRoundTrip) {
  service::Response response;
  response.ok = true;
  response.id = "r-2";
  response.cache = "hit";
  response.backend = "stabilizer";
  response.counts["00"] = 3;
  response.counts["11"] = 5;
  response.memory = {"00", "11", "11"};
  response.output = "1\n";
  response.elapsed_ms = 1.5;
  const service::Response parsed =
      service::parse_response(service::serialize_response(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.id, response.id);
  EXPECT_EQ(parsed.cache, response.cache);
  EXPECT_EQ(parsed.backend, response.backend);
  EXPECT_EQ(parsed.counts, response.counts);
  EXPECT_EQ(parsed.memory, response.memory);
  EXPECT_EQ(parsed.output, response.output);
  EXPECT_DOUBLE_EQ(parsed.elapsed_ms, response.elapsed_ms);
}

TEST(Protocol, MalformedRequestsThrow) {
  EXPECT_THROW((void)service::parse_request("not json"), service::ServiceError);
  EXPECT_THROW((void)service::parse_request("[1,2]"), service::ServiceError);
  EXPECT_THROW((void)service::parse_request(R"({"op":"frobnicate"})"),
               service::ServiceError);
  EXPECT_THROW((void)service::parse_request(R"({"op":"run"})"),
               service::ServiceError);  // run requires source
  EXPECT_THROW((void)service::parse_request(
                   R"({"op":"run","source":"print 1;","exec":"jit"})"),
               service::ServiceError);
  EXPECT_THROW((void)service::parse_request(
                   R"({"op":"run","source":"print 1;","pipeline":"o9"})"),
               service::ServiceError);
  // ping needs no source.
  EXPECT_NO_THROW((void)service::parse_request(R"({"op":"ping"})"));
}

TEST(Json, ParsesEscapesAndRejectsGarbage) {
  const service::Json doc =
      service::Json::parse(R"({"s":"a\nbA","n":-2.5,"b":true,"a":[1,2]})");
  EXPECT_EQ(doc.get("s").as_string(), "a\nbA");
  EXPECT_DOUBLE_EQ(doc.get("n").as_double(), -2.5);
  EXPECT_TRUE(doc.get("b").as_bool());
  EXPECT_EQ(doc.get("a").as_array().size(), 2u);
  EXPECT_THROW((void)service::Json::parse("{"), service::ServiceError);
  EXPECT_THROW((void)service::Json::parse("{} trailing"),
               service::ServiceError);
  EXPECT_THROW((void)service::Json::parse(std::string(100, '[')),
               service::ServiceError);
  // Escaping round-trips control characters.
  service::JsonObject obj;
  obj["k"] = std::string("line\nwith\ttabs\"quotes\"");
  const service::Json round =
      service::Json::parse(service::Json(obj).dump());
  EXPECT_EQ(round.get("k").as_string(), "line\nwith\ttabs\"quotes\"");
}

// ---- service ----------------------------------------------------------------

service::Request run_request(const std::string& source, std::uint64_t seed,
                             std::size_t shots = 64) {
  service::Request request;
  request.op = "run";
  request.source = source;
  request.seed = seed;
  request.shots = shots;
  return request;
}

constexpr const char* kBellSource = "qubit q = |+>; print q;";

TEST(Service, WarmRequestsHitTheCache) {
  service::Service svc;
  const service::Response cold = svc.handle(run_request(kBellSource, 7));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.backend, "statevector");
  const service::Response warm = svc.handle(run_request(kBellSource, 7));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache, "hit");
  // Same seed and shots => identical draws, cold or warm.
  EXPECT_EQ(warm.counts, cold.counts);
  EXPECT_EQ(svc.cache().stats().compiles, 1u);
  std::uint64_t total = 0;
  for (const auto& [bits, count] : cold.counts) total += count;
  EXPECT_EQ(total, 64u);
}

TEST(Service, AutoBackendResolvesOnceAndIsCachedResolved) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  service::Service svc;
  service::Request request = run_request("qubit q = |+>; print q;", 3);
  request.backend = "auto";
  const service::Response cold = svc.handle(request);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache, "miss");
  // |+> + measure is all-Clifford: auto must pin the stabilizer method.
  EXPECT_EQ(cold.backend, "stabilizer");
  const service::Response warm = svc.handle(request);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.backend, "stabilizer");
  // The Clifford scan ran exactly once, at compile time — the warm request
  // replayed on the cached resolved backend without re-resolving.
  EXPECT_EQ(
      obs::metrics().counter(obs::names::kAutoStabilizer).value(), 1u);
  obs::reset_metrics();
  obs::set_metrics_enabled(false);
}

TEST(Service, RunMatchesTheCliReplaySemantics) {
  // The daemon's counts must be what a local replay of the same program
  // produces: compile under the canonical seed, then sample with the
  // request's seed on the same backend.
  service::Service svc;
  const service::Response response =
      svc.handle(run_request(kBellSource, 21, 128));
  ASSERT_TRUE(response.ok) << response.error;
  RunConfig local;
  const lang::RunResult compiled = lang::run_source(kBellSource, local);
  RunConfig replay;
  replay.seed = 21;
  replay.shots = 128;
  const circ::ExecutionResult expected =
      circ::Executor(replay).run(compiled.lowered_circuit);
  EXPECT_EQ(response.counts, expected.counts);
}

TEST(Service, ClassicalProgramsReturnDeterministicOutput) {
  service::Service svc;
  const service::Response response =
      svc.handle(run_request("int x = 2 + 3; print x;", 1));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.counts.empty());
  EXPECT_EQ(response.output, "5\n");
}

TEST(Service, ErrorsBecomeResponsesAndAreNotCached) {
  service::Service svc;
  const service::Response bad = svc.handle(run_request("qubit q = ;", 1));
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(svc.cache().stats().compiles, 0u);
  EXPECT_EQ(svc.cache().stats().entries, 0u);
}

TEST(Service, TraceOpRunsUnderTheRequestSeed) {
  service::Service svc;
  service::Request trace;
  trace.op = "trace";
  trace.source = "int x = 40 + 2; print x;";
  trace.seed = 5;
  const service::Response vm_trace = svc.handle(trace);
  ASSERT_TRUE(vm_trace.ok) << vm_trace.error;
  EXPECT_EQ(vm_trace.output, "42\n");
  EXPECT_EQ(vm_trace.cache, "miss");
  // Warm trace executes the cached bytecode.
  const service::Response warm = svc.handle(trace);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.output, "42\n");
  // The ast engine recompiles per trace but answers identically.
  trace.exec = "ast";
  const service::Response ast_trace = svc.handle(trace);
  ASSERT_TRUE(ast_trace.ok) << ast_trace.error;
  EXPECT_EQ(ast_trace.output, "42\n");
}

TEST(Service, PingStatsAndShutdownOps) {
  service::Service svc;
  service::Request ping;
  ping.op = "ping";
  ping.id = "p1";
  const service::Response pong = svc.handle(ping);
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, "p1");

  (void)svc.handle(run_request(kBellSource, 1));
  service::Request stats;
  stats.op = "stats";
  const service::Response stat = svc.handle(stats);
  ASSERT_TRUE(stat.ok);
  EXPECT_EQ(stat.stats.at("compiles").as_uint(), 1u);
  EXPECT_EQ(stat.stats.at("cache_misses").as_uint(), 1u);

  EXPECT_FALSE(svc.shutdown_requested());
  service::Request shutdown;
  shutdown.op = "shutdown";
  EXPECT_TRUE(svc.handle(shutdown).ok);
  EXPECT_TRUE(svc.shutdown_requested());
}

TEST(Service, BatchedSubmissionsAreBitIdenticalToSequentialHandling) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  // Reference counts from a fresh service, one request at a time.
  std::vector<service::Response> expected;
  {
    service::Service reference;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      expected.push_back(reference.handle(run_request(kBellSource, seed, 100)));
      ASSERT_TRUE(expected.back().ok) << expected.back().error;
    }
  }
  for (const std::size_t workers : {1u, 4u}) {
    service::ServiceOptions options;
    options.workers = workers;
    service::Service svc(options);
    std::mutex mu;
    std::vector<service::Response> responses(6);
    // Queue every request BEFORE starting the workers so the first worker
    // drains them as one same-key batch deterministically.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      svc.submit(run_request(kBellSource, seed, 100),
                 [&, seed](service::Response resp) {
                   std::lock_guard<std::mutex> lock(mu);
                   responses[seed - 1] = std::move(resp);
                 });
    }
    EXPECT_EQ(svc.queue_depth(), 6u);
    svc.start();
    svc.stop();
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok) << responses[i].error;
      EXPECT_EQ(responses[i].counts, expected[i].counts)
          << "workers=" << workers << " seed=" << (i + 1);
    }
  }
  // With the queue pre-loaded, at least one multi-request batch formed.
  EXPECT_GE(
      obs::metrics().counter(obs::names::kServiceBatchedRequests).value(), 6u);
  EXPECT_GE(obs::metrics().counter(obs::names::kServiceBatchedShots).value(),
            600u);
  obs::reset_metrics();
  obs::set_metrics_enabled(false);
}

TEST(Service, EvictionUnderSmallByteBudgetStillAnswersCorrectly) {
  service::ServiceOptions options;
  options.cache_bytes = 1;  // every insert evicts the previous entry
  service::Service svc(options);
  const service::Response a = svc.handle(run_request("print 1;", 1));
  const service::Response b = svc.handle(run_request("print 2;", 1));
  const service::Response a2 = svc.handle(run_request("print 1;", 1));
  ASSERT_TRUE(a.ok && b.ok && a2.ok);
  EXPECT_EQ(a2.output, "1\n");
  EXPECT_EQ(a2.cache, "miss");  // evicted by b, recompiled
  const auto stats = svc.cache().stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.compiles, 3u);
  EXPECT_EQ(stats.entries, 1u);
}

// ---- socket server ----------------------------------------------------------

TEST(Server, SocketRoundTripAndShutdownOp) {
  std::string path = "/tmp/qutes_test_" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions options;
  options.socket_path = path;
  options.service.workers = 2;
  service::Server server(options);
  std::thread server_thread([&] { server.run(); });
  // Wait for the socket to appear.
  for (int i = 0; i < 200; ++i) {
    service::Request ping;
    ping.op = "ping";
    try {
      const service::Response pong = service::request_over_socket(path, ping);
      if (pong.ok) break;
    } catch (const service::ServiceError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const service::Response cold =
      service::request_over_socket(path, run_request(kBellSource, 17, 50));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache, "miss");
  const service::Response warm =
      service::request_over_socket(path, run_request(kBellSource, 17, 50));
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache, "hit");
  EXPECT_EQ(warm.counts, cold.counts);

  service::Request shutdown;
  shutdown.op = "shutdown";
  const service::Response bye = service::request_over_socket(path, shutdown);
  EXPECT_TRUE(bye.ok);
  server_thread.join();
  // Graceful shutdown unlinks the socket.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(Server, RejectsOverlongSocketPaths) {
  service::ServerOptions options;
  options.socket_path = std::string(200, 'x');
  service::Server server(options);
  EXPECT_THROW(server.run(), service::ServiceError);
}

}  // namespace
