// Formatter tests: canonical rendering of every construct, parse-format
// round trips, idempotence, and behavioural equivalence of formatted code.
#include <gtest/gtest.h>

#include "qutes/lang/compiler.hpp"
#include "qutes/lang/parser.hpp"
#include "qutes/lang/printer.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string fmt(const std::string& source) {
  Program program = parse(source);
  return format_program(program);
}

TEST(Printer, Declarations) {
  EXPECT_EQ(fmt("int   x=3;"), "int x = 3;\n");
  EXPECT_EQ(fmt("quint<8>w=3q;"), "quint<8> w = 3q;\n");
  EXPECT_EQ(fmt("qubit q=|+>;"), "qubit q = |+>;\n");
  EXPECT_EQ(fmt("qustring s=\"01\"q;"), "qustring s = \"01\"q;\n");
  EXPECT_EQ(fmt("int[] xs=[1,2,3];"), "int[] xs = [1, 2, 3];\n");
  EXPECT_EQ(fmt("quint s=[0,3]q;"), "quint s = [0, 3]q;\n");
  EXPECT_EQ(fmt("float f = 1.5;"), "float f = 1.5;\n");
  EXPECT_EQ(fmt("float f = 2;"), "float f = 2;\n");  // int literal initializer
}

TEST(Printer, OperatorsGetCanonicalParens) {
  EXPECT_EQ(fmt("x=1+2*3;"), "x = 1 + (2 * 3);\n");
  EXPECT_EQ(fmt("b=!a&&c;"), "b = (!a) && c;\n");
  EXPECT_EQ(fmt("b=\"01\" in s;"), "b = \"01\" in s;\n");
}

TEST(Printer, CompoundAssignment) {
  EXPECT_EQ(fmt("x+=2;"), "x += 2;\n");
  EXPECT_EQ(fmt("y<<=3;"), "y <<= 3;\n");
}

TEST(Printer, ControlFlowCanonicalizesToBlocks) {
  EXPECT_EQ(fmt("if(x)print 1;"), "if (x) {\n  print 1;\n}\n");
  EXPECT_EQ(fmt("while(x<3)x+=1;"), "while (x < 3) {\n  x += 1;\n}\n");
  EXPECT_EQ(fmt("foreach i in xs print i;"),
            "foreach i in xs {\n  print i;\n}\n");
  EXPECT_EQ(fmt("if(a){print 1;}else{print 2;}"),
            "if (a) {\n  print 1;\n}\nelse {\n  print 2;\n}\n");
}

TEST(Printer, FunctionsAndGateStatements) {
  EXPECT_EQ(fmt("int f(int a,quint b){return a;}"),
            "int f(int a, quint b) {\n  return a;\n}\n");
  EXPECT_EQ(fmt("hadamard q;not a,b;"), "hadamard q;\nnot a, b;\n");
  EXPECT_EQ(fmt("barrier;"), "barrier;\n");
}

TEST(Printer, StringEscapes) {
  EXPECT_EQ(fmt("print \"a\\nb\";"), "print \"a\\nb\";\n");
  EXPECT_EQ(fmt("print \"say \\\"hi\\\"\";"), "print \"say \\\"hi\\\"\";\n");
}

TEST(Printer, FormatIsIdempotent) {
  const char* sources[] = {
      "int x = 1; if (x > 0) { x += 2; } print x;",
      "void f(qubit q) { hadamard q; } qubit a = |0>; f(a);",
      "quint<4> v = 5q; v <<= 1; foreach b in v { not b; }",
      "int[] xs = [3, 1, 2]; print qmin(xs);",
  };
  for (const char* source : sources) {
    const std::string once = fmt(source);
    EXPECT_EQ(fmt(once), once) << source;
  }
}

TEST(Printer, FormattedCodeBehavesIdentically) {
  const char* sources[] = {
      "quint<4> x = 5q; x += 9; print x;",
      "qubit a = |0>; qubit b = |0>; bell(a, b); bool x = a; bool y = b; "
      "print x == y;",
      "int total = 0; foreach v in [1, 2, 3] { total += v; } print total;",
  };
  for (const char* source : sources) {
    qutes::RunConfig options;
    options.seed = 31;
    const std::string original = run_source(source, options).output;
    const std::string formatted_output = run_source(fmt(source), options).output;
    EXPECT_EQ(original, formatted_output) << source;
  }
}

TEST(Printer, ExpressionFormatter) {
  Program p = parse("x = f(1, g(2))[3];");
  auto* assign = dynamic_cast<AssignStmt*>(p.statements[0].get());
  ASSERT_NE(assign, nullptr);
  EXPECT_EQ(format_expression(*assign->value), "f(1, g(2))[3]");
}

}  // namespace
