// State-preparation tests: uniform superpositions over arbitrary value sets
// and general non-negative amplitude targets (the substrate behind the
// Qutes `[a, b, c]q` superposition literal).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/state_prep.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

std::vector<double> final_probs(const circ::QuantumCircuit& c) {
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  return traj.state.probabilities();
}

TEST(StatePrep, SingleBasisState) {
  circ::QuantumCircuit c(3);
  std::vector<double> probs(8, 0.0);
  probs[5] = 1.0;
  append_state_prep(c, iota(3), probs);
  const auto result = final_probs(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(result[i], probs[i], 1e-10) << i;
  }
}

TEST(StatePrep, UniformOverAll) {
  circ::QuantumCircuit c(2);
  const std::vector<double> probs(4, 0.25);
  append_state_prep(c, iota(2), probs);
  const auto result = final_probs(c);
  for (double p : result) EXPECT_NEAR(p, 0.25, 1e-10);
}

TEST(StatePrep, ArbitraryDistribution) {
  circ::QuantumCircuit c(3);
  const std::vector<double> probs = {0.1, 0.05, 0.2, 0.0, 0.3, 0.15, 0.05, 0.15};
  append_state_prep(c, iota(3), probs);
  const auto result = final_probs(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(result[i], probs[i], 1e-9) << i;
  }
}

TEST(StatePrep, Validation) {
  circ::QuantumCircuit c(2);
  EXPECT_THROW(append_state_prep(c, iota(2), std::vector<double>(3, 0.33)), Error);
  EXPECT_THROW(append_state_prep(c, iota(2), std::vector<double>(4, 0.3)), Error);
}

class UniformSuperposition : public ::testing::TestWithParam<int> {};

TEST_P(UniformSuperposition, EqualWeightOnListedValues) {
  static const std::vector<std::vector<std::uint64_t>> cases = {
      {0, 3},          // the paper's [0, 3]q example shape
      {1, 2, 5},       // non-power-of-two count
      {7},             // single value
      {0, 1, 2, 3},    // full subspace
      {2, 4, 6, 8, 10, 12},
  };
  const auto& values = cases[static_cast<std::size_t>(GetParam())];
  std::uint64_t max_value = 0;
  for (auto v : values) max_value = std::max(max_value, v);
  const std::size_t n = bits_for(max_value);

  circ::QuantumCircuit c(n);
  append_uniform_superposition(c, iota(n), values);
  const auto probs = final_probs(c);
  const double expect = 1.0 / static_cast<double>(values.size());
  for (std::uint64_t i = 0; i < dim_of(n); ++i) {
    const bool listed = std::find(values.begin(), values.end(), i) != values.end();
    EXPECT_NEAR(probs[i], listed ? expect : 0.0, 1e-9) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sets, UniformSuperposition, ::testing::Range(0, 5));

TEST(UniformSuperposition, RejectsDuplicatesAndOverflow) {
  circ::QuantumCircuit c(2);
  const std::vector<std::uint64_t> dup = {1, 1};
  const std::vector<std::uint64_t> big = {9};
  const std::vector<std::uint64_t> none;
  EXPECT_THROW(append_uniform_superposition(c, iota(2), dup), Error);
  EXPECT_THROW(append_uniform_superposition(c, iota(2), big), Error);
  EXPECT_THROW(append_uniform_superposition(c, iota(2), none), Error);
}

TEST(UniformSuperposition, AmplitudesAreRealNonNegative) {
  // The multiplexed-RY construction promises non-negative real amplitudes.
  circ::QuantumCircuit c(3);
  const std::vector<std::uint64_t> values = {1, 4, 6};
  append_uniform_superposition(c, iota(3), values);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(traj.state.amplitude(i).imag(), 0.0, 1e-10);
    EXPECT_GE(traj.state.amplitude(i).real(), -1e-10);
  }
}

}  // namespace
