// Randomized round-trip property tests.
//
// Two invariants, checked on seeded random circuits so the generator (not a
// hand-picked example) finds the edge cases:
//  * QASM round trip: export -> import preserves semantics, including
//    classically-conditioned gates and circuits carrying GlobalPhase
//    instructions (dropped by QASM2, unobservable in fidelity);
//  * preset equivalence: every PassManager preset (O0/O1/basis/hardware)
//    preserves the statevector of random 2..8-qubit circuits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/rng.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

double circuit_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  const std::size_t n = std::max(a.num_qubits(), b.num_qubits());
  QuantumCircuit wa(n), wb(n);
  std::vector<std::size_t> map_a(a.num_qubits()), map_b(b.num_qubits());
  for (std::size_t i = 0; i < a.num_qubits(); ++i) map_a[i] = i;
  for (std::size_t i = 0; i < b.num_qubits(); ++i) map_b[i] = i;
  wa.compose(a, map_a);
  wb.compose(b, map_b);
  Executor ex({.shots = 1, .seed = 3, .noise = {}});
  return ex.run_single(wa).state.fidelity(ex.run_single(wb).state);
}

double angle(Rng& rng) { return (rng.uniform() - 0.5) * 4.0 * M_PI; }

/// Pick `k` distinct qubits of an n-qubit register.
std::vector<std::size_t> pick_qubits(Rng& rng, std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  for (std::size_t i = 0; i < k; ++i)
    std::swap(all[i], all[i + rng.below(n - i)]);
  all.resize(k);
  return all;
}

/// Append one random unitary gate. `allow_wide` enables the 3+-qubit and
/// multi-controlled instructions (which QASM export lowers rather than
/// emitting 1:1).
void random_gate(QuantumCircuit& c, Rng& rng, bool allow_wide) {
  const std::size_t n = c.num_qubits();
  const std::uint64_t kinds = (allow_wide && n >= 3) ? 22 : 19;
  const std::uint64_t kind = rng.below(kinds);
  const auto q = pick_qubits(rng, n, std::min<std::size_t>(n, 3));
  switch (kind) {
    case 0: c.h(q[0]); break;
    case 1: c.x(q[0]); break;
    case 2: c.y(q[0]); break;
    case 3: c.z(q[0]); break;
    case 4: c.s(q[0]); break;
    case 5: c.sdg(q[0]); break;
    case 6: c.t(q[0]); break;
    case 7: c.sx(q[0]); break;
    case 8: c.rx(angle(rng), q[0]); break;
    case 9: c.ry(angle(rng), q[0]); break;
    case 10: c.rz(angle(rng), q[0]); break;
    case 11: c.p(angle(rng), q[0]); break;
    case 12: c.u(angle(rng), angle(rng), angle(rng), q[0]); break;
    case 13: c.cx(q[0], q[1]); break;
    case 14: c.cz(q[0], q[1]); break;
    case 15: c.ch(q[0], q[1]); break;
    case 16: c.cp(angle(rng), q[0], q[1]); break;
    case 17: c.crz(angle(rng), q[0], q[1]); break;
    case 18: c.swap(q[0], q[1]); break;
    case 19: c.ccx(q[0], q[1], q[2]); break;
    case 20: c.cswap(q[0], q[1], q[2]); break;
    default: {
      // Multi-controlled phase over a random control set.
      const auto wide = pick_qubits(rng, n, 2 + rng.below(n - 1));
      const std::size_t target = wide.back();
      const std::vector<std::size_t> controls(wide.begin(), wide.end() - 1);
      c.mcp(angle(rng), controls, target);
      break;
    }
  }
}

QuantumCircuit random_unitary_circuit(std::uint64_t seed, std::size_t n,
                                      std::size_t gates, bool allow_wide) {
  Rng rng(seed);
  QuantumCircuit c(n);
  for (std::size_t g = 0; g < gates; ++g) {
    random_gate(c, rng, allow_wide);
    if (rng.below(8) == 0) {
      c.append({GateType::GlobalPhase, {}, {angle(rng)}, {}, {}});
    }
  }
  return c;
}

TEST(RoundTripProperty, QasmPreservesRandomUnitaryCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 2 + seed % 5;  // 2..6 qubits
    const QuantumCircuit original =
        random_unitary_circuit(seed * 1337, n, 24, /*allow_wide=*/true);
    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(original));
    EXPECT_NEAR(circuit_fidelity(original, reimported), 1.0, 1e-9)
        << "seed " << seed << ", " << n << " qubits";
  }
}

TEST(RoundTripProperty, QasmPreservesConditionedCircuits) {
  // Random dynamic circuits: unitary prefix, a mid-circuit measurement,
  // gates conditioned on its outcome, final measurement. Export/import must
  // keep the `if (c[k] == v)` guards; with matched seeds both executions
  // draw the same trajectory, so the histograms agree exactly.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 2 + seed % 4;  // 2..5 qubits
    Rng rng(seed * 7919);
    QuantumCircuit c(n, n);
    for (std::size_t g = 0; g < 10; ++g) random_gate(c, rng, /*allow_wide=*/false);
    c.measure(0, 0);
    for (std::size_t g = 0; g < 6; ++g) {
      random_gate(c, rng, /*allow_wide=*/false);
      if (rng.below(2) == 0) c.c_if(0, static_cast<int>(rng.below(2)));
    }
    c.measure_all();

    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(c));
    std::size_t conditioned_in = 0, conditioned_out = 0;
    for (const Instruction& in : c.instructions())
      conditioned_in += in.condition.has_value();
    for (const Instruction& in : reimported.instructions())
      conditioned_out += in.condition.has_value();
    EXPECT_EQ(conditioned_in, conditioned_out) << "seed " << seed;

    Executor ex({.shots = 128, .seed = 1000 + seed, .noise = {}});
    EXPECT_EQ(ex.run(c).counts, ex.run(reimported).counts) << "seed " << seed;
  }
}

TEST(RoundTripProperty, EveryPresetPreservesRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    const std::size_t n = 2 + seed % 7;  // 2..8 qubits
    const QuantumCircuit base =
        random_unitary_circuit(seed * 271828, n, 20, /*allow_wide=*/true);
    for (const Preset preset :
         {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
      const QuantumCircuit lowered = make_pipeline(preset).run(base);
      EXPECT_NEAR(circuit_fidelity(base, lowered), 1.0, 1e-9)
          << "seed " << seed << ", " << n << " qubits, preset "
          << preset_name(preset);
    }
  }
}

TEST(RoundTripProperty, PresetsComposeWithQasmExport) {
  // The lowered circuit of every preset must itself survive a QASM round
  // trip (this is what `qutes ... --pipeline X --qasm out.qasm` emits).
  const QuantumCircuit base =
      random_unitary_circuit(42, 4, 18, /*allow_wide=*/true);
  for (const Preset preset :
       {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
    const QuantumCircuit lowered = make_pipeline(preset).run(base);
    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(lowered));
    EXPECT_NEAR(circuit_fidelity(lowered, reimported), 1.0, 1e-9)
        << preset_name(preset);
  }
}

}  // namespace
