// Randomized round-trip property tests.
//
// Two invariants, checked on seeded random circuits so the generator (not a
// hand-picked example) finds the edge cases:
//  * QASM round trip: export -> import preserves semantics, including
//    classically-conditioned gates and circuits carrying GlobalPhase
//    instructions (dropped by QASM2, unobservable in fidelity);
//  * preset equivalence: every PassManager preset (O0/O1/basis/hardware)
//    preserves the statevector of random 2..8-qubit circuits.
//
// Circuits come from the shared qutes::testing generators; comparison uses
// the differential comparator (global-phase and ancilla tolerant).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/testing/differential.hpp"
#include "qutes/testing/generators.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;
namespace qt = qutes::testing;

void expect_equiv(const QuantumCircuit& before, const QuantumCircuit& after,
                  const std::string& label) {
  Executor ex({.shots = 1, .seed = 3});
  const auto a = ex.run_single(before).state;
  const auto b = ex.run_single(after).state;
  // Lowered circuits may be wider (ancillas); the original never is.
  const auto cmp =
      qt::compare_states_up_to_global_phase(a.amplitudes(), b.amplitudes(), 1e-9);
  EXPECT_TRUE(cmp.equivalent) << label << ": " << cmp.detail;
}

QuantumCircuit random_unitary_circuit(std::uint64_t seed, std::size_t n,
                                      std::size_t gates, bool allow_wide) {
  qt::CircuitGenOptions options;
  options.num_qubits = n;
  options.gates = gates;
  options.allow_wide = allow_wide;
  options.allow_barrier = false;  // keep these suites purely-unitary gates
  return qt::random_circuit(seed, options);
}

TEST(RoundTripProperty, QasmPreservesRandomUnitaryCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 2 + seed % 5;  // 2..6 qubits
    const QuantumCircuit original =
        random_unitary_circuit(seed * 1337, n, 24, /*allow_wide=*/true);
    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(original));
    expect_equiv(original, reimported,
                 "seed " + std::to_string(seed) + ", " + std::to_string(n) +
                     " qubits");
  }
}

TEST(RoundTripProperty, QasmPreservesConditionedCircuits) {
  // Random dynamic circuits (mid-circuit measurement, c_if conditions from
  // the shared generator's dynamic mode, final measurement). Export/import
  // must keep the `if (c[k] == v)` guards; with matched seeds both
  // executions draw the same trajectory, so the histograms agree exactly.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    qt::CircuitGenOptions options;
    options.num_qubits = 2 + seed % 4;  // 2..5 qubits
    options.gates = 16;
    options.allow_wide = false;
    options.allow_barrier = false;
    options.allow_global_phase = false;  // QASM2 drops GlobalPhase; counts
                                         // are phase-blind, but keep this
                                         // suite's export 1:1
    options.allow_dynamic = true;
    options.measure_all = true;
    const QuantumCircuit c = qt::random_circuit(seed * 7919, options);

    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(c));
    std::size_t conditioned_in = 0, conditioned_out = 0;
    for (const Instruction& in : c.instructions())
      conditioned_in += in.condition.has_value();
    for (const Instruction& in : reimported.instructions())
      conditioned_out += in.condition.has_value();
    EXPECT_EQ(conditioned_in, conditioned_out) << "seed " << seed;

    Executor ex({.shots = 128, .seed = 1000 + seed});
    EXPECT_EQ(ex.run(c).counts, ex.run(reimported).counts) << "seed " << seed;
  }
}

TEST(RoundTripProperty, EveryPresetPreservesRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    const std::size_t n = 2 + seed % 7;  // 2..8 qubits
    const QuantumCircuit base =
        random_unitary_circuit(seed * 271828, n, 20, /*allow_wide=*/true);
    for (const Preset preset :
         {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
      const QuantumCircuit lowered = make_pipeline(preset).run(base);
      expect_equiv(base, lowered,
                   "seed " + std::to_string(seed) + ", " + std::to_string(n) +
                       " qubits, preset " + preset_name(preset));
    }
  }
}

TEST(RoundTripProperty, PresetsComposeWithQasmExport) {
  // The lowered circuit of every preset must itself survive a QASM round
  // trip (this is what `qutes ... --pipeline X --qasm out.qasm` emits).
  const QuantumCircuit base =
      random_unitary_circuit(42, 4, 18, /*allow_wide=*/true);
  for (const Preset preset :
       {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
    const QuantumCircuit lowered = make_pipeline(preset).run(base);
    const QuantumCircuit reimported =
        qasm::import_circuit(qasm::export_circuit(lowered));
    expect_equiv(lowered, reimported, preset_name(preset));
  }
}

}  // namespace
