// Interpreter tests: classical semantics, quantum allocation & operations,
// automatic measurement, control flow, functions (by-reference), arrays,
// and the circuit log's consistency with the live run.
#include <gtest/gtest.h>

#include <set>

#include "qutes/circuit/executor.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

RunResult run_full(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options);
}

// ---- classical core -------------------------------------------------------------

TEST(Interp, ClassicalArithmetic) {
  EXPECT_EQ(run("print 1 + 2 * 3;"), "7\n");
  EXPECT_EQ(run("print (1 + 2) * 3;"), "9\n");
  EXPECT_EQ(run("print 7 / 2; print 7 % 2;"), "3\n1\n");
  EXPECT_EQ(run("print 1.5 + 2;"), "3.5\n");
  EXPECT_EQ(run("print -3;"), "-3\n");
  EXPECT_EQ(run("print 1 << 4; print 32 >> 2;"), "16\n8\n");
}

TEST(Interp, ClassicalComparisonsAndLogic) {
  EXPECT_EQ(run("print 2 < 3; print 3 <= 3; print 4 > 5;"), "true\ntrue\nfalse\n");
  EXPECT_EQ(run("print true && false; print true || false; print !true;"),
            "false\ntrue\nfalse\n");
  EXPECT_EQ(run("print 1 == 1 && 2 != 3;"), "true\n");
}

TEST(Interp, Strings) {
  EXPECT_EQ(run("string s = \"ab\" + \"cd\"; print s; print len(s);"), "abcd\n4\n");
  EXPECT_EQ(run("print \"ab\" == \"ab\"; print \"a\" < \"b\";"), "true\ntrue\n");
  EXPECT_EQ(run("print \"hello\"[1];"), "e\n");
  EXPECT_EQ(run("print \"ell\" in \"hello\";"), "true\n");
  EXPECT_EQ(run("print indexof(\"ell\", \"hello\");"), "1\n");
}

TEST(Interp, VariablesAndScopes) {
  EXPECT_EQ(run("int x = 1; { int y = x + 1; print y; } print x;"), "2\n1\n");
  EXPECT_THROW(run("int x = 1; int x = 2;"), LangError);
  EXPECT_THROW(run("print nope;"), LangError);
  // Shadowing in an inner scope is allowed.
  EXPECT_EQ(run("int x = 1; { int x = 9; print x; } print x;"), "9\n1\n");
}

TEST(Interp, CompoundAssignment) {
  EXPECT_EQ(run("int x = 2; x += 3; x *= 4; x -= 1; x /= 2; print x;"), "9\n");
}

TEST(Interp, IfWhileForeach) {
  EXPECT_EQ(run("if (2 > 1) print \"yes\"; else print \"no\";"), "yes\n");
  EXPECT_EQ(run("int i = 0; while (i < 4) { i += 1; } print i;"), "4\n");
  EXPECT_EQ(run("foreach x in [1, 2, 3] { print x; }"), "1\n2\n3\n");
  EXPECT_EQ(run("foreach ch in \"ab\" { print ch; }"), "a\nb\n");
}

TEST(Interp, Arrays) {
  EXPECT_EQ(run("int[] xs = [10, 20, 30]; print xs[1]; print len(xs);"), "20\n3\n");
  EXPECT_EQ(run("int[] xs = [1, 2]; xs[0] = 9; print xs;"), "[9, 2]\n");
  EXPECT_THROW(run("int[] xs = [1]; print xs[5];"), LangError);
}

TEST(Interp, Functions) {
  EXPECT_EQ(run("int add(int a, int b) { return a + b; } print add(2, 3);"), "5\n");
  EXPECT_EQ(run("int fib(int n) { if (n < 2) return n; "
                "return fib(n - 1) + fib(n - 2); } print fib(10);"),
            "55\n");
  EXPECT_THROW(run("int f(int a) { return a; } print f(1, 2);"), LangError);
  EXPECT_THROW(run("print undefined_fn(1);"), LangError);
}

TEST(Interp, PassByReference) {
  // Paper §4: variables are always passed by reference.
  EXPECT_EQ(run("void bump(int x) { x += 1; } int v = 5; bump(v); print v;"), "6\n");
  EXPECT_EQ(run("void set0(int[] xs) { xs[0] = 99; } "
                "int[] a = [1, 2]; set0(a); print a[0];"),
            "99\n");
}

TEST(Interp, RecursionDepthGuard) {
  EXPECT_THROW(run("int f(int n) { return f(n + 1); } print f(0);"), LangError);
}

TEST(Interp, ReturnOutsideFunctionRejected) {
  EXPECT_THROW(run("return 1;"), LangError);
}

// ---- quantum basics ---------------------------------------------------------------

TEST(Interp, QubitLiteralsMeasureCorrectly) {
  EXPECT_EQ(run("qubit q = |0>; print q;"), "false\n");
  EXPECT_EQ(run("qubit q = |1>; print q;"), "true\n");
}

TEST(Interp, QuintBasisStates) {
  EXPECT_EQ(run("quint x = 5q; print x;"), "5\n");
  EXPECT_EQ(run("quint x = 0q; print x;"), "0\n");
  EXPECT_EQ(run("quint<8> x = 200q; print x;"), "200\n");
}

TEST(Interp, QustringRoundTrip) {
  EXPECT_EQ(run("qustring s = \"0101\"q; print s;"), "0101\n");
  EXPECT_EQ(run("qustring s = \"0101\"q; print len(s);"), "4\n");
}

TEST(Interp, ClassicalToQuantumPromotion) {
  // Assigning a classical int to a quint encodes it (paper's
  // TypeCastingHandler).
  EXPECT_EQ(run("quint x = 6; print x;"), "6\n");
  EXPECT_EQ(run("int c = 3; quint x = c; print x;"), "3\n");
  EXPECT_EQ(run("qubit q = true; print q;"), "true\n");
  EXPECT_EQ(run("qustring s = \"110\"; print s;"), "110\n");
}

TEST(Interp, QuantumToClassicalAutoMeasure) {
  EXPECT_EQ(run("quint x = 9q; int c = x; print c;"), "9\n");
  EXPECT_EQ(run("qubit q = |1>; bool b = q; print b;"), "true\n");
  const auto result = run_full("quint x = 9q; int c = x; print c;");
  // The measurement must be recorded in the circuit log.
  EXPECT_GE(result.circuit.count_ops().at("measure"), 4u);
}

TEST(Interp, GateStatements) {
  EXPECT_EQ(run("qubit q = |0>; not q; print q;"), "true\n");
  EXPECT_EQ(run("quint x = 0q; not x; print x;"), "1\n");
  EXPECT_EQ(run("qubit q = |0>; hadamard q; hadamard q; print q;"), "false\n");
  EXPECT_EQ(run("quint<3> x = 0q; not x; print x;"), "7\n");
  EXPECT_THROW(run("int x = 1; hadamard x;"), LangError);
}

TEST(Interp, HadamardStatistics) {
  // |+> measures 0/1 roughly evenly across seeds.
  int ones = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    if (run("qubit q = |+>; print q;", seed) == "true\n") ++ones;
  }
  EXPECT_GT(ones, 15);
  EXPECT_LT(ones, 45);
}

TEST(Interp, MeasurementIsSticky) {
  // Once measured, a |+> qubit yields the same value again.
  EXPECT_EQ(run("qubit q = |+>; bool a = q; bool b = q; print a == b;"), "true\n");
}

TEST(Interp, SuperpositionLiteral) {
  // [1, 3]q measures to 1 or 3, never anything else.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::string out = run("quint s = [1, 3]q; print s;", seed);
    EXPECT_TRUE(out == "1\n" || out == "3\n") << out;
  }
}

TEST(Interp, QuantumConditionAutoMeasures) {
  EXPECT_EQ(run("qubit q = |1>; if (q) print \"one\"; else print \"zero\";"),
            "one\n");
  EXPECT_EQ(run("quint x = 0q; if (x) print \"nz\"; else print \"z\";"), "z\n");
}

// ---- quantum arithmetic -------------------------------------------------------------

TEST(Interp, QuantumAdditionBasis) {
  EXPECT_EQ(run("quint a = 5q; quint b = 2q; quint c = a + b; print c;"), "7\n");
  EXPECT_EQ(run("quint a = 3q; quint c = a + 4; print c;"), "7\n");
  EXPECT_EQ(run("quint a = 3q; quint c = 4 + a; print c;"), "7\n");
}

TEST(Interp, QuantumSubtraction) {
  EXPECT_EQ(run("quint a = 5q; quint b = 2q; quint c = a - b; print c;"), "3\n");
  EXPECT_EQ(run("quint<4> a = 5q; quint c = a - 2; print c;"), "3\n");
}

TEST(Interp, QuantumCompoundAddSub) {
  EXPECT_EQ(run("quint<5> x = 5q; x += 9; print x;"), "14\n");
  EXPECT_EQ(run("quint<5> x = 14q; x -= 3; print x;"), "11\n");
  EXPECT_EQ(run("quint<4> x = 1q; quint y = 2q; x += y; print x;"), "3\n");
}

TEST(Interp, QuantumAdditionIsModular) {
  EXPECT_EQ(run("quint<3> x = 7q; x += 2; print x;"), "1\n");
}

TEST(Interp, QuantumAdditionOnSuperposition) {
  // (|1> + |3>) + 4 -> |5> or |7>.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const std::string out = run("quint s = [1, 3]q; quint<4> t = s + 4; print t;", seed);
    EXPECT_TRUE(out == "5\n" || out == "7\n") << out;
  }
}

TEST(Interp, QuantumMultiplicationByConstant) {
  EXPECT_EQ(run("quint a = 3q; quint c = a * 5; print c;"), "15\n");
  EXPECT_EQ(run("quint a = 3q; quint c = 0 * a; print c;"), "0\n");
}

TEST(Interp, QuantumShifts) {
  EXPECT_EQ(run("quint<8> y = 1q; y <<= 3; print y;"), "8\n");
  EXPECT_EQ(run("quint<8> y = 8q; y >>= 1; print y;"), "4\n");
  // Cyclic: shifting past the top wraps.
  EXPECT_EQ(run("quint<4> y = 8q; y <<= 1; print y;"), "1\n");
  // Non-in-place shift leaves the source intact (on basis states).
  EXPECT_EQ(run("quint<4> a = 2q; quint b = a << 1; print b; print a;"), "4\n2\n");
}

TEST(Interp, QuantumComparisonMeasures) {
  EXPECT_EQ(run("quint a = 5q; print a > 3;"), "true\n");
  EXPECT_EQ(run("quint a = 5q; print a == 5;"), "true\n");
  EXPECT_EQ(run("quint a = 2q; quint b = 2q; print a == b;"), "true\n");
}

TEST(Interp, QubitIndexingIntoRegisters) {
  EXPECT_EQ(run("quint<4> x = 0q; not x[2]; print x;"), "4\n");
  EXPECT_EQ(run("qustring s = \"000\"q; not s[1]; print s;"), "010\n");
  EXPECT_THROW(run("quint<2> x = 0q; not x[5];"), LangError);
}

TEST(Interp, ForeachOverQuantumRegister) {
  EXPECT_EQ(run("quint<3> x = 0q; foreach b in x { not b; } print x;"), "7\n");
}

// ---- builtins ----------------------------------------------------------------------

TEST(Interp, BuiltinGates) {
  EXPECT_EQ(run("qubit a = |1>; qubit b = |0>; cx(a, b); print b;"), "true\n");
  EXPECT_EQ(run("qubit a = |1>; qubit b = |1>; qubit c = |0>; ccx(a, b, c); print c;"),
            "true\n");
  EXPECT_EQ(run("qubit a = |1>; qubit b = |0>; swapq(a, b); print a; print b;"),
            "false\ntrue\n");
}

TEST(Interp, BuiltinBellPairCorrelates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(run("qubit a = |0>; qubit b = |0>; bell(a, b); "
                  "bool x = a; bool y = b; print x == y;",
                  seed),
              "true\n");
  }
}

TEST(Interp, BuiltinQftRoundTrip) {
  EXPECT_EQ(run("quint<3> x = 5q; qft(x); iqft(x); print x;"), "5\n");
}

TEST(Interp, BuiltinMeasureFunction) {
  EXPECT_EQ(run("quint x = 6q; print measure(x);"), "6\n");
  EXPECT_EQ(run("print measure(3);"), "3\n");  // classical: identity
}

TEST(Interp, IntrospectionBuiltins) {
  const std::string out =
      run("quint<4> x = 0q; hadamard x; print num_qubits(); print gate_count();");
  EXPECT_EQ(out, "4\n4\n");
}

// ---- grover in / indexof --------------------------------------------------------------

TEST(Interp, GroverInOperator) {
  EXPECT_EQ(run("qustring t = \"0110100\"q; print \"101\" in t;"), "true\n");
  EXPECT_EQ(run("qustring t = \"0000000\"q; print \"111\" in t;"), "false\n");
}

TEST(Interp, GroverIndexofPosition) {
  const std::string out = run("print indexof(\"101\", \"0110100\"q);");
  EXPECT_EQ(out, "2\n");
}

TEST(Interp, GroverCompilesRealCircuit) {
  const auto result = run_full("qustring t = \"0110100\"q; bool hit = \"101\" in t;");
  // Grover machinery allocated index+window registers and appended gates.
  EXPECT_GT(result.num_qubits, 7u);
  EXPECT_GT(result.gate_count, 50u);
  bool has_grover_reg = false;
  for (const auto& reg : result.circuit.qregs()) {
    if (reg.name.find("grover") != std::string::npos) has_grover_reg = true;
  }
  EXPECT_TRUE(has_grover_reg);
}

// ---- circuit-log consistency (DESIGN.md ablation) ------------------------------------

TEST(Interp, CircuitLogReplaysToSameOutcome) {
  // The logged circuit, replayed through the Executor with the same seed
  // policy, must yield the same classical outcome as the live run for a
  // deterministic program.
  const auto result = run_full("quint<4> x = 5q; x += 9; int v = x; print v;");
  EXPECT_EQ(result.output, "14\n");
  circ::Executor ex({.shots = 1, .seed = 99});
  const auto traj = ex.run_single(result.circuit);
  // The measured clbits of the replay encode 14 as well (deterministic).
  EXPECT_EQ(traj.clbits & 0xF, 14u);
}

TEST(Interp, SeedsChangeOutcomesButStayReproducible) {
  const std::string source = "quint s = [0, 1, 2, 3]q; print s;";
  EXPECT_EQ(run(source, 5), run(source, 5));
  std::set<std::string> outcomes;
  for (std::uint64_t seed = 0; seed < 24; ++seed) outcomes.insert(run(source, seed));
  EXPECT_GE(outcomes.size(), 3u);  // several of the four values observed
}

TEST(Interp, QubitBudgetEnforced) {
  EXPECT_THROW(run("quint<20> a = 0q; quint<20> b = 0q;"), LangError);
}

}  // namespace
