// Front-end robustness: grammar-driven random Qutes programs plus
// byte-level mutation fuzzing, asserting the lexer/parser/interpreter
// contract "LangError or success, never a crash". Also replays the
// checked-in crash corpus (tests/corpus/*.qut) — every file there once
// crashed or hung a front-end component, so it must keep parsing/failing
// cleanly forever.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qutes/common/error.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/testing/generators.hpp"

namespace qt = qutes::testing;
namespace lang = qutes::lang;

namespace {

bool quick_mode() { return std::getenv("QUTES_DIFF_QUICK") != nullptr; }

std::size_t sweep(std::size_t full, std::size_t quick) {
  return quick_mode() ? quick : full;
}

std::string excerpt(const std::string& source) {
  std::string out = source.substr(0, 200);
  for (char& ch : out) {
    if (ch != '\n' && (ch < 0x20 || ch == 0x7f)) ch = '?';
  }
  if (source.size() > 200) out += "...";
  return out;
}

/// The robustness contract: the front end may reject input (LangError) or
/// accept it, but any other escape — segfault, std::logic_error from a
/// container, uncaught internal exception — is a bug.
template <typename Fn>
void expect_langerror_or_success(Fn&& fn, std::uint64_t seed,
                                 const std::string& source) {
  try {
    fn();
  } catch (const qutes::LangError&) {
    // rejected cleanly — fine
  } catch (const std::exception& e) {
    ADD_FAILURE() << "seed=" << seed << " escaped with "
                  << typeid(e).name() << ": " << e.what()
                  << "\nsource:\n" << excerpt(source);
  }
}

qutes::RunConfig fast_run_options() {
  qutes::RunConfig options;
  options.seed = 11;
  options.include_stdlib = false;  // generated programs don't call stdlib
  return options;
}

}  // namespace

TEST(DslRobustness, GeneratedProgramsRunCleanly) {
  // Valid-by-construction sources: these must not merely avoid crashing,
  // the overwhelming majority must actually execute. A generator drifting
  // into 90% rejections would silently gut the fuzzing value, so track it.
  const std::size_t programs = sweep(220, 24);
  std::size_t accepted = 0;
  for (std::uint64_t seed = 0; seed < programs; ++seed) {
    const std::string source = qt::random_qutes_program(seed);
    bool ok = true;
    try {
      (void)lang::run_source(source, fast_run_options());
    } catch (const qutes::LangError&) {
      ok = false;
    } catch (const std::exception& e) {
      ok = false;
      ADD_FAILURE() << "seed=" << seed << " escaped with " << e.what()
                    << "\nsource:\n" << excerpt(source);
    }
    if (ok) ++accepted;
  }
  // The generator aims for always-valid output; allow a small slack for
  // corner interactions rather than pinning 100%.
  EXPECT_GE(accepted * 10, programs * 9)
      << "only " << accepted << "/" << programs
      << " generated programs executed";
}

TEST(DslRobustness, MutatedProgramsNeverCrashTheFrontEnd) {
  const std::size_t programs = sweep(220, 16);
  const std::size_t mutants_per_program = 4;
  for (std::uint64_t seed = 0; seed < programs; ++seed) {
    const std::string base = qt::random_qutes_program(seed);
    for (std::size_t m = 0; m < mutants_per_program; ++m) {
      const std::uint64_t mseed = seed * 131 + m;
      const std::string source = qt::mutate_source(base, mseed);
      expect_langerror_or_success(
          [&] { (void)lang::compile_source(source, /*include_stdlib=*/false); },
          mseed, source);
    }
  }
}

TEST(DslRobustness, MutatedProgramsNeverCrashTheInterpreter) {
  // Running mutants end to end is slower than parse-only, so a smaller
  // sweep; the interpreter's loop budget and call-depth cap keep every
  // mutant terminating.
  const std::size_t programs = sweep(80, 8);
  for (std::uint64_t seed = 0; seed < programs; ++seed) {
    const std::string source =
        qt::mutate_source(qt::random_qutes_program(seed), seed ^ 0x9e3779b9ULL);
    expect_langerror_or_success(
        [&] { (void)lang::run_source(source, fast_run_options()); }, seed,
        source);
  }
}

TEST(DslRobustness, CrashCorpusReplaysCleanly) {
  const std::filesystem::path dir = QUTES_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "missing corpus directory " << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".qut") files.push_back(entry.path());
  }
  ASSERT_FALSE(files.empty()) << "corpus directory " << dir << " has no .qut files";

  for (const std::filesystem::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    SCOPED_TRACE(path.filename().string());
    expect_langerror_or_success(
        [&] { (void)lang::compile_source(source, /*include_stdlib=*/false); },
        0, source);
    expect_langerror_or_success(
        [&] { (void)lang::run_source(source, fast_run_options()); }, 0, source);
  }
}
