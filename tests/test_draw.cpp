// Smoke tests for the ASCII drawer: row labels, gate glyphs, layering.
#include <gtest/gtest.h>

#include "qutes/circuit/draw.hpp"

namespace {

using namespace qutes::circ;

TEST(Draw, EmptyCircuit) {
  QuantumCircuit c;
  EXPECT_NE(draw(c).find("empty"), std::string::npos);
}

TEST(Draw, LabelsEveryQubitRow) {
  QuantumCircuit c;
  c.add_register("data", 2);
  c.add_register("anc", 1);
  const std::string art = draw(c);
  EXPECT_NE(art.find("data[0]"), std::string::npos);
  EXPECT_NE(art.find("data[1]"), std::string::npos);
  EXPECT_NE(art.find("anc[0]"), std::string::npos);
}

TEST(Draw, GateGlyphs) {
  QuantumCircuit c(3, 1);
  c.h(0).cx(0, 1).ccx(0, 1, 2).swap(0, 2).measure(2, 0);
  const std::string art = draw(c);
  EXPECT_NE(art.find("H"), std::string::npos);
  EXPECT_NE(art.find("(+)"), std::string::npos);  // CX/CCX target
  EXPECT_NE(art.find("*"), std::string::npos);    // control dot
  EXPECT_NE(art.find("x"), std::string::npos);    // swap ends
  EXPECT_NE(art.find("M"), std::string::npos);    // measure
}

TEST(Draw, ParameterizedGatesShowAngle) {
  QuantumCircuit c(1);
  c.rz(0.5, 0);
  EXPECT_NE(draw(c).find("RZ(0.5)"), std::string::npos);
}

TEST(Draw, OneLinePerQubit) {
  QuantumCircuit c(4);
  c.h(0);
  const std::string art = draw(c);
  std::size_t lines = 0;
  for (char ch : art) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(Draw, ClassicalSummaryLine) {
  QuantumCircuit c(1, 3);
  c.h(0);
  EXPECT_NE(draw(c).find("3 classical bit(s)"), std::string::npos);
}

}  // namespace
