// Symbolic circuit parameters end to end: circ::Param plumbing (bind,
// compose, inverse, QASM, draw), the bind-before-run executor path against
// pre-bound compilation, parameter-shift gradients against finite
// differences, the language front end's param() builtin, and the qutesd
// one-compile/N-binds contract.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "qutes/algorithms/variational.hpp"
#include "qutes/algorithms/vqe.hpp"
#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/cache_key.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/service/protocol.hpp"
#include "qutes/service/service.hpp"

namespace {

using namespace qutes;
using qutes::algo::Hamiltonian;

// ---- circ::Param plumbing ---------------------------------------------------

TEST(Param, DeclarationAndBinding) {
  circ::QuantumCircuit c(2);
  const circ::Param theta = c.parameter("theta");
  const circ::Param phi = c.parameter("phi");
  EXPECT_EQ(theta.index, 0u);
  EXPECT_EQ(phi.index, 1u);
  // Find-or-create: re-declaring returns the same slot.
  EXPECT_EQ(c.parameter("theta").index, 0u);
  c.rx(theta, 0).cx(0, 1).rz(phi, 1).ry(0.25, 0);
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_EQ(c.num_parameters(), 2u);
  ASSERT_EQ(c.parameters().size(), 2u);
  EXPECT_EQ(c.parameters()[0].name, "theta");

  const circ::QuantumCircuit bound = c.bind(std::array{1.5, -0.75});
  EXPECT_FALSE(bound.is_parameterized());
  EXPECT_EQ(bound.num_parameters(), 0u);
  ASSERT_EQ(bound.size(), c.size());
  EXPECT_DOUBLE_EQ(bound.instructions()[0].params[0], 1.5);
  EXPECT_DOUBLE_EQ(bound.instructions()[2].params[0], -0.75);
  EXPECT_DOUBLE_EQ(bound.instructions()[3].params[0], 0.25);  // concrete kept
}

TEST(Param, BindWrongLengthNamesTheExpectedCount) {
  circ::QuantumCircuit c(1);
  c.rx(c.parameter("a"), 0).ry(c.parameter("b"), 0);
  try {
    (void)c.bind(std::array{0.5});
    FAIL() << "bind with the wrong vector length must throw";
  } catch (const CircuitError& err) {
    EXPECT_NE(std::string(err.what()).find("2 parameter(s), got 1"),
              std::string::npos)
        << err.what();
  }
}

TEST(Param, UnboundCircuitsAreRejectedByTheSamplingExecutor) {
  circ::QuantumCircuit c(1, 1);
  c.rx(c.parameter("t"), 0).measure(0, 0);
  try {
    (void)circ::Executor({.shots = 4, .seed = 1}).run(c);
    FAIL() << "run on an unbound circuit must throw";
  } catch (const CircuitError& err) {
    EXPECT_NE(std::string(err.what()).find("t"), std::string::npos)
        << err.what();
  }
}

TEST(Param, ComposeRemapsParameterTables) {
  circ::QuantumCircuit a(2);
  a.rx(a.parameter("shared"), 0).ry(a.parameter("only_a"), 1);
  circ::QuantumCircuit b(2);
  b.rz(b.parameter("only_b"), 0).p(b.parameter("shared"), 1);
  const std::array<std::size_t, 2> qubit_map = {0, 1};
  a.compose(b, qubit_map);
  // "shared" unifies; the others keep distinct slots.
  EXPECT_EQ(a.num_parameters(), 3u);
  const circ::QuantumCircuit bound = a.bind(std::array{1.0, 2.0, 3.0});
  // b's p("shared") must resolve through a's slot 0, not b's old slot 1.
  EXPECT_DOUBLE_EQ(bound.instructions().back().params[0], 1.0);
  EXPECT_DOUBLE_EQ(bound.instructions()[2].params[0], 3.0);  // only_b
}

TEST(Param, InverseOfParameterizedCircuitIsRejected) {
  circ::QuantumCircuit c(1);
  c.rx(c.parameter("t"), 0);
  EXPECT_THROW((void)c.inverse(), CircuitError);
  EXPECT_NO_THROW((void)c.bind(std::array{0.5}).inverse());
}

TEST(Param, QasmRoundTripsUnboundParameters) {
  circ::QuantumCircuit c(2, 2);
  c.rx(c.parameter("theta"), 0)
      .cx(0, 1)
      .rz(c.parameter("phi"), 1)
      .ry(0.5, 0)
      .measure(0, 0)
      .measure(1, 1);
  const std::string qasm = circ::qasm::export_circuit(c);
  EXPECT_NE(qasm.find("rx(theta)"), std::string::npos) << qasm;
  EXPECT_NE(qasm.find("rz(phi)"), std::string::npos) << qasm;
  const circ::QuantumCircuit back = circ::qasm::import_circuit(qasm);
  ASSERT_EQ(back.num_parameters(), 2u);
  EXPECT_EQ(back.parameter_names(), c.parameter_names());
  // Binding both sides gives bit-identical instruction streams.
  const auto lhs = c.bind(std::array{0.9, -1.2});
  const auto rhs = back.bind(std::array{0.9, -1.2});
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs.instructions()[i].type, rhs.instructions()[i].type) << i;
    EXPECT_EQ(lhs.instructions()[i].params, rhs.instructions()[i].params) << i;
  }
}

TEST(Param, DrawShowsParameterNames) {
  circ::QuantumCircuit c(1);
  c.rx(c.parameter("alpha"), 0);
  EXPECT_NE(circ::draw(c).find("alpha"), std::string::npos) << circ::draw(c);
}

// ---- bind-before-run vs pre-bound: differential sweep ----------------------

/// Random parameterized ansatz whose lowered form is identical whether the
/// pipeline runs before or after binding: no phase rotations (the peephole
/// merges adjacent concrete RZ/P chains, which symbolic angles would not),
/// and angles away from the identity.
circ::QuantumCircuit random_param_circuit(std::uint64_t seed, std::size_t n,
                                          std::size_t num_params) {
  Rng rng(seed);
  circ::QuantumCircuit c(n, n);
  std::vector<circ::Param> params;
  for (std::size_t i = 0; i < num_params; ++i) {
    params.push_back(c.parameter("t" + std::to_string(i)));
  }
  for (std::size_t step = 0; step < 24; ++step) {
    const std::size_t q = rng() % n;
    switch (rng() % 5) {
      case 0: c.h(q); break;
      case 1: c.rx(params[rng() % num_params], q); break;
      case 2: c.ry(params[rng() % num_params], q); break;
      case 3: c.rx(0.3 + 2.5 * rng.uniform(), q); break;
      default: {
        const std::size_t t = (q + 1 + rng() % (n - 1)) % n;
        c.cx(q, t);
        break;
      }
    }
  }
  for (std::size_t q = 0; q < n; ++q) c.measure(q, q);
  return c;
}

TEST(BindBeforeRun, BitIdenticalToPreBoundAcrossBackendsAndPresets) {
  struct ConfigCase {
    const char* backend;
    std::optional<circ::Preset> preset;
  };
  const ConfigCase cases[] = {
      {"statevector", std::nullopt},
      {"statevector", circ::Preset::O0},
      {"statevector", circ::Preset::O1},
      {"mps", std::nullopt},
      {"mps", circ::Preset::O0},
      {"mps", circ::Preset::O1},
  };
  for (std::uint64_t seed : {3ULL, 17ULL, 101ULL}) {
    const circ::QuantumCircuit circuit = random_param_circuit(seed, 3, 4);
    // Three bindings per circuit, each its own seed/shots.
    Rng rng(seed * 7 + 1);
    std::vector<circ::BindBatchItem> items;
    for (int i = 0; i < 3; ++i) {
      circ::BindBatchItem item;
      item.params.resize(circuit.num_parameters());
      for (double& p : item.params) p = 0.3 + 2.5 * rng.uniform();
      item.seed = rng();
      item.shots = 150;
      items.push_back(item);
    }
    for (const ConfigCase& cc : cases) {
      RunConfig config;
      config.backend.name = cc.backend;
      circ::PassManager pipeline;
      if (cc.preset) {
        pipeline = circ::make_pipeline(*cc.preset);
        config.pipeline.manager = &pipeline;
      }
      const std::vector<circ::ExecutionResult> late =
          circ::Executor(config).run_bound_batch(circuit, items);
      ASSERT_EQ(late.size(), items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        RunConfig solo = config;
        solo.seed = items[i].seed;
        solo.shots = items[i].shots;
        const circ::ExecutionResult expected =
            circ::Executor(solo).run(circuit.bind(items[i].params));
        EXPECT_EQ(late[i].counts, expected.counts)
            << cc.backend << "/"
            << (cc.preset ? circ::preset_name(*cc.preset) : "none")
            << " circuit seed " << seed << " item " << i;
      }
    }
  }
}

TEST(BindBeforeRun, WrongLengthItemNamesTheExpectedCount) {
  circ::QuantumCircuit c(1, 1);
  c.rx(c.parameter("a"), 0).measure(0, 0);
  circ::BindBatchItem item;
  item.params = {0.1, 0.2, 0.3};
  try {
    (void)circ::Executor(RunConfig{}).run_bound_batch(c, {&item, 1});
    FAIL() << "wrong-length binding must throw";
  } catch (const CircuitError& err) {
    EXPECT_NE(std::string(err.what()).find("1 parameter(s), got 3"),
              std::string::npos)
        << err.what();
  }
}

// ---- parameter-shift gradients against finite differences ------------------

/// Random symbolic ansatz over the shift-rule gate set, with deliberately
/// shared parameters (each parameter may appear in several gates).
circ::QuantumCircuit random_shift_ansatz(std::uint64_t seed, std::size_t n,
                                         std::size_t num_params) {
  Rng rng(seed);
  circ::QuantumCircuit c(n);
  std::vector<circ::Param> params;
  for (std::size_t i = 0; i < num_params; ++i) {
    params.push_back(c.parameter("t" + std::to_string(i)));
  }
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  for (std::size_t step = 0; step < 3 * n; ++step) {
    const std::size_t q = rng() % n;
    const circ::Param p = params[rng() % num_params];
    switch (rng() % 5) {
      case 0: c.rx(p, q); break;
      case 1: c.ry(p, q); break;
      case 2: c.rz(p, q); break;
      case 3: c.p(p, q); break;
      default: {
        const std::size_t t = (q + 1 + rng() % (n - 1)) % n;
        c.cp(p, q, t);
        break;
      }
    }
    if (step % 2 == 1 && n > 1) c.cx(step % n, (step + 1) % n);
  }
  return c;
}

Hamiltonian random_hamiltonian(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Hamiltonian h;
  const char paulis[] = {'I', 'X', 'Y', 'Z'};
  for (int term = 0; term < 3; ++term) {
    std::string pauli(n, 'I');
    for (char& c : pauli) c = paulis[rng() % 4];
    h.terms.push_back({-1.0 + 2.0 * rng.uniform(), pauli});
  }
  return h;
}

TEST(ParameterShift, MatchesCentralFiniteDifferencesOnRandomAnsatze) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 2 + seed % 5;  // 2..6 qubits
    const std::size_t num_params = 2 + seed % 4;
    const circ::QuantumCircuit ansatz =
        random_shift_ansatz(seed, n, num_params);
    const Hamiltonian h = random_hamiltonian(seed * 31 + 7, n);
    Rng rng(seed * 13 + 5);
    std::vector<double> at(ansatz.num_parameters());
    for (double& v : at) v = -1.5 + 3.0 * rng.uniform();

    const std::vector<double> grad =
        algo::parameter_shift_gradient(ansatz, h, at);
    ASSERT_EQ(grad.size(), at.size());
    const double step = 1e-5;
    for (std::size_t i = 0; i < at.size(); ++i) {
      std::vector<double> plus = at, minus = at;
      plus[i] += step;
      minus[i] -= step;
      const double fd = (algo::expectation(ansatz, h, plus) -
                         algo::expectation(ansatz, h, minus)) /
                        (2.0 * step);
      EXPECT_NEAR(grad[i], fd, 1e-6)
          << "seed " << seed << " n " << n << " parameter " << i;
    }
  }
}

TEST(ParameterShift, SymbolicCrzIsRejectedWithGuidance) {
  circ::QuantumCircuit c(2);
  c.h(0).crz(c.parameter("t"), 0, 1);
  const Hamiltonian h{{{1.0, "ZZ"}}};
  try {
    (void)algo::parameter_shift_gradient(c, h, std::array{0.5});
    FAIL() << "symbolic crz must be rejected by the two-term shift rule";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("crz"), std::string::npos)
        << err.what();
  }
}

TEST(Minimize, WrongInitialPointLengthNamesTheExpectedCount) {
  algo::VariationalProblem problem;
  problem.ansatz = algo::build_ry_ansatz(2, 1);  // 4 parameters
  problem.hamiltonian = Hamiltonian{{{-1.0, "ZZ"}}};
  problem.initial_parameters = {0.1};
  try {
    (void)algo::minimize(problem);
    FAIL() << "wrong-length initial point must throw";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("4 parameter(s), got 1"),
              std::string::npos)
        << err.what();
  }
}

TEST(Minimize, PipelineRunsOnceAndConvergesIdentically) {
  algo::VariationalProblem problem;
  problem.ansatz = algo::build_ry_ansatz(2, 1);
  problem.hamiltonian = Hamiltonian{{{-1.0, "ZZ"}, {-1.0, "XX"}}};
  problem.initial_parameters = {0.3, -0.2, 0.5, 0.1};
  algo::MinimizeOptions options;
  options.max_iterations = 300;
  const algo::MinimizeResult plain = algo::minimize(problem, options);
  circ::PassManager pipeline = circ::make_pipeline(circ::Preset::O1);
  options.pipeline = &pipeline;
  const algo::MinimizeResult piped = algo::minimize(problem, options);
  EXPECT_NEAR(plain.value, -2.0, 0.01);
  EXPECT_NEAR(piped.value, plain.value, 1e-9);
}

// ---- language front end -----------------------------------------------------

TEST(LangParams, BoundRunUsesTheBindingAndLogsSymbolicRefs) {
  RunConfig config;
  config.bind_params = {M_PI};
  const lang::RunResult result = lang::run_source(
      "qubit q = |0>; ry(param(\"t\"), q); print q;", config);
  EXPECT_EQ(result.output, "true\n");  // ry(pi)|0> = |1>
  // The logged circuit stays rebindable: the instruction carries the
  // symbolic reference even though the live run used the binding.
  EXPECT_TRUE(result.circuit.is_parameterized());
  EXPECT_EQ(result.circuit.num_parameters(), 1u);
  EXPECT_EQ(result.circuit.parameter_names()[0], "t");
}

TEST(LangParams, UnboundUseDiagnosesTheParameterAndSuggestsBind) {
  RunConfig config;
  try {
    (void)lang::run_source("qubit q = |0>; ry(param(\"t\"), q); print q;",
                           config);
    FAIL() << "unbound param use must be a language error";
  } catch (const LangError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("'t'"), std::string::npos) << what;
    EXPECT_NE(what.find("--bind"), std::string::npos) << what;
  }
}

TEST(LangParams, VmAndAstEnginesAgreeOnBoundPrograms) {
  const char* source =
      "qubit q = |0>; rx(param(\"a\"), q); rx(-param(\"a\"), q); print q;";
  for (const ExecMode mode : {ExecMode::Vm, ExecMode::Ast}) {
    RunConfig config;
    config.exec_mode = mode;
    config.bind_params = {1.234};
    const lang::RunResult result = lang::run_source(source, config);
    EXPECT_EQ(result.output, "false\n");  // the rotations cancel
  }
}

// ---- qutesd: one compile, N binds -------------------------------------------

constexpr const char* kSweepSource =
    "qubit q = |0>; ry(param(\"t\"), q); print q;";

service::Request sweep_request(double theta, std::uint64_t seed,
                               std::size_t shots) {
  service::Request request;
  request.op = "run";
  request.source = kSweepSource;
  request.seed = seed;
  request.shots = shots;
  request.params = {theta};
  return request;
}

TEST(ServiceParams, ProtocolRoundTripsParams) {
  service::Request request;
  request.op = "run";
  request.source = kSweepSource;
  request.params = {0.5, -1.25, 3.0};
  const service::Request parsed =
      service::parse_request(service::serialize_request(request));
  EXPECT_EQ(parsed.params, request.params);
  EXPECT_THROW((void)service::parse_request(
                   R"({"op":"run","source":"print 1;","params":["x"]})"),
               service::ServiceError);
}

TEST(ServiceParams, SweepCompilesOnceAndBindsPerRequest) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  service::Service svc;
  for (int i = 0; i < 8; ++i) {
    const double theta = 0.3 + 0.25 * i;
    const service::Response resp = svc.handle(sweep_request(theta, 5, 200));
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.cache, i == 0 ? "miss" : "hit");

    // The daemon's counts must match a local compile + bind + replay.
    RunConfig local;
    local.bind_params = {theta};
    const lang::RunResult compiled = lang::run_source(kSweepSource, local);
    RunConfig replay;
    replay.seed = 5;
    replay.shots = 200;
    const circ::ExecutionResult expected = circ::Executor(replay).run(
        compiled.lowered_circuit.bind(std::array{theta}));
    EXPECT_EQ(resp.counts, expected.counts) << "theta " << theta;
  }
  // The whole sweep was ONE compile (the unbound artifact) and 8 binds.
  EXPECT_EQ(svc.cache().stats().compiles, 1u);
  EXPECT_EQ(obs::metrics().counter(obs::names::kServiceCompiles).value(), 1u);
  EXPECT_EQ(obs::metrics().counter(obs::names::kExecutorBinds).value(), 8u);
  EXPECT_EQ(obs::metrics().counter(obs::names::kExecutorBoundBatches).value(),
            8u);
  obs::reset_metrics();
  obs::set_metrics_enabled(false);
}

TEST(ServiceParams, WrongLengthBindingBecomesAnErrorResponse) {
  service::Service svc;
  service::Request request = sweep_request(0.4, 1, 32);
  request.params = {0.4, 0.8};  // the program declares ONE parameter
  const service::Response resp = svc.handle(request);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("1 parameter(s), got 2"), std::string::npos)
      << resp.error;
}

TEST(ServiceParams, MixedParamsBatchMatchesSequentialHandling) {
  // Reference: one request at a time against a fresh service.
  std::vector<service::Response> expected;
  {
    service::Service reference;
    for (int i = 0; i < 5; ++i) {
      expected.push_back(
          reference.handle(sweep_request(0.2 + 0.5 * i, 3 + i, 100)));
      ASSERT_TRUE(expected.back().ok) << expected.back().error;
    }
  }
  // Same five requests queued before start(), so one worker drains them as
  // a single same-key batch with five DIFFERENT bindings.
  service::ServiceOptions options;
  options.workers = 1;
  service::Service svc(options);
  std::mutex mu;
  std::vector<service::Response> responses(5);
  for (int i = 0; i < 5; ++i) {
    svc.submit(sweep_request(0.2 + 0.5 * i, 3 + i, 100),
               [&, i](service::Response resp) {
                 std::lock_guard<std::mutex> lock(mu);
                 responses[static_cast<std::size_t>(i)] = std::move(resp);
               });
  }
  svc.start();
  svc.stop();
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_EQ(responses[i].counts, expected[i].counts) << "item " << i;
  }
  EXPECT_EQ(svc.cache().stats().compiles, 1u);
}

TEST(ServiceParams, ClassicalParameterizedProgramsRerunPerBinding) {
  service::Service svc;
  service::Request request;
  request.op = "run";
  request.source = "float x = param(\"k\"); print x;";
  request.params = {7.0};
  const service::Response seven = svc.handle(request);
  ASSERT_TRUE(seven.ok) << seven.error;
  EXPECT_EQ(seven.output, "7\n");
  request.params = {42.0};
  const service::Response answer = svc.handle(request);
  ASSERT_TRUE(answer.ok) << answer.error;
  EXPECT_EQ(answer.output, "42\n");
  EXPECT_EQ(svc.cache().stats().compiles, 1u);  // same unbound artifact
}

TEST(ServiceParams, CacheKeyIgnoresBindings) {
  RunConfig a;
  RunConfig b;
  b.bind_params = {1.0, 2.0};
  b.seed = 99;
  EXPECT_EQ(cache_key("src", a, "O1"), cache_key("src", b, "O1"));
}

}  // namespace
