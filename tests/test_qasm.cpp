// OpenQASM 2.0 interchange tests: structural export checks, import of
// hand-written programs, and semantic round-trips (export -> import ->
// identical final state).
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

double final_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  Executor ex({.shots = 1, .seed = 5});
  return ex.run_single(a).state.fidelity(ex.run_single(b).state);
}

TEST(QasmExport, HeaderAndRegisters) {
  QuantumCircuit c;
  c.add_register("alpha", 2);
  c.add_classical_register("beta", 1);
  const std::string text = qasm::export_circuit(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(text.find("qreg alpha[2];"), std::string::npos);
  EXPECT_NE(text.find("creg beta[1];"), std::string::npos);
}

TEST(QasmExport, GateLines) {
  QuantumCircuit c(2, 1);
  c.h(0).cx(0, 1).p(M_PI / 2, 1).measure(1, 0);
  const std::string text = qasm::export_circuit(c);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(text.find("p(pi/2) q[1];"), std::string::npos);
  EXPECT_NE(text.find("measure q[1] -> c[0];"), std::string::npos);
}

TEST(QasmExport, SymbolicPiParams) {
  QuantumCircuit c(1);
  c.rz(M_PI, 0).rz(-M_PI / 4, 0).rz(0.123, 0);
  const std::string text = qasm::export_circuit(c);
  EXPECT_NE(text.find("rz(pi)"), std::string::npos);
  EXPECT_NE(text.find("rz(-pi/4)"), std::string::npos);
  EXPECT_NE(text.find("rz(0.123"), std::string::npos);
}

TEST(QasmExport, MultiControlledGetLowered) {
  QuantumCircuit c(5);
  const std::size_t controls[4] = {0, 1, 2, 3};
  c.mcx(controls, 4);
  const std::string text = qasm::export_circuit(c);
  EXPECT_EQ(text.find("mcx"), std::string::npos);  // no nonstandard mnemonic
  EXPECT_NE(text.find("ccx"), std::string::npos);
  EXPECT_NE(text.find("qreg anc["), std::string::npos);
}

TEST(QasmExport, ConditionPrefix) {
  QuantumCircuit c(1, 1);
  c.h(0).measure(0, 0);
  c.x(0).c_if(0, 1);
  const std::string text = qasm::export_circuit(c);
  EXPECT_NE(text.find("if (c[0] == 1) x q[0];"), std::string::npos);
}

TEST(QasmImport, MinimalProgram) {
  const std::string src = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0], q[1];
    measure q[0] -> c[0];
    measure q[1] -> c[1];
  )";
  const QuantumCircuit c = qasm::import_circuit(src);
  EXPECT_EQ(c.num_qubits(), 2u);
  EXPECT_EQ(c.num_clbits(), 2u);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.instructions()[0].type, GateType::H);
  EXPECT_EQ(c.instructions()[1].type, GateType::CX);
}

TEST(QasmImport, ParamExpressions) {
  const std::string src = R"(
    qreg q[1];
    rz(pi/2) q[0];
    rz(-pi/4) q[0];
    rz(2*pi) q[0];
    rz(0.5) q[0];
    u(pi/2, 0, pi) q[0];
  )";
  const QuantumCircuit c = qasm::import_circuit(src);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_NEAR(c.instructions()[0].params[0], M_PI / 2, 1e-15);
  EXPECT_NEAR(c.instructions()[1].params[0], -M_PI / 4, 1e-15);
  EXPECT_NEAR(c.instructions()[2].params[0], 2 * M_PI, 1e-15);
  EXPECT_NEAR(c.instructions()[3].params[0], 0.5, 1e-15);
  ASSERT_EQ(c.instructions()[4].params.size(), 3u);
}

TEST(QasmImport, WholeRegisterMeasure) {
  const std::string src = R"(
    qreg q[3];
    creg c[3];
    h q[0];
    measure q -> c;
  )";
  const QuantumCircuit c = qasm::import_circuit(src);
  EXPECT_EQ(c.count_ops().at("measure"), 3u);
}

TEST(QasmImport, CommentsIgnored) {
  const std::string src = R"(
    // leading comment
    qreg q[1];
    h q[0]; // trailing comment
  )";
  const QuantumCircuit c = qasm::import_circuit(src);
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmImport, U1AliasesP) {
  const QuantumCircuit c = qasm::import_circuit("qreg q[1]; u1(0.5) q[0];");
  EXPECT_EQ(c.instructions()[0].type, GateType::P);
}

TEST(QasmImport, SingleBitCondition) {
  const std::string src = R"(
    qreg q[1];
    creg c[1];
    measure q[0] -> c[0];
    if (c[0] == 1) x q[0];
  )";
  const QuantumCircuit c = qasm::import_circuit(src);
  ASSERT_EQ(c.size(), 2u);
  ASSERT_TRUE(c.instructions()[1].condition.has_value());
  EXPECT_EQ(c.instructions()[1].condition->clbit, 0u);
}

TEST(QasmImport, Errors) {
  EXPECT_THROW(qasm::import_circuit("qreg q[1]; frobnicate q[0];"), CircuitError);
  EXPECT_THROW(qasm::import_circuit("h q[0];"), CircuitError);             // undeclared
  EXPECT_THROW(qasm::import_circuit("qreg q[1]; h q[5];"), CircuitError);  // range
  EXPECT_THROW(qasm::import_circuit("qreg q[1]; measure q[0];"), CircuitError);
}

// Semantic round-trips over several circuit shapes.
class QasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTrip, ExportImportPreservesState) {
  QuantumCircuit c(4, 0);
  switch (GetParam()) {
    case 0:
      c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
      break;
    case 1:
      c.rx(0.3, 0).ry(0.7, 1).rz(-1.1, 2).p(2.2, 3).u(0.1, 0.2, 0.3, 0);
      break;
    case 2:
      c.h(0).h(1).ccx(0, 1, 2).swap(2, 3).cz(0, 3);
      break;
    case 3: {
      const std::size_t controls[3] = {0, 1, 2};
      c.h(0).h(1).h(2);
      c.mcx(controls, 3);
      break;
    }
    case 4:
      c.sx(0).sdg(1).tdg(2).cy(0, 1).ch(1, 2).cp(0.9, 2, 3).crz(0.4, 0, 3);
      break;
    default:
      break;
  }
  const std::string text = qasm::export_circuit(c);
  const QuantumCircuit back = qasm::import_circuit(text);
  EXPECT_NEAR(final_fidelity(decompose_multicontrolled(c), back), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QasmRoundTrip, ::testing::Range(0, 5));

TEST(QasmRoundTripDynamic, TeleportationCircuitSurvives) {
  QuantumCircuit c(3, 2);
  c.ry(0.77, 0);
  c.h(1).cx(1, 2);
  c.cx(0, 1).h(0);
  c.measure(0, 0).measure(1, 1);
  c.x(2).c_if(1, 1);
  c.z(2).c_if(0, 1);
  const QuantumCircuit back = qasm::import_circuit(qasm::export_circuit(c));
  EXPECT_EQ(back.size(), c.size());
  // Same seeds -> same trajectory -> same final state.
  Executor ex({.shots = 1, .seed = 21});
  EXPECT_NEAR(ex.run_single(c).state.fidelity(ex.run_single(back).state), 1.0, 1e-9);
}

}  // namespace
