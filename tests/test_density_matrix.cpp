// DensityMatrix tests: agreement with the state-vector on unitary circuits,
// exact channels vs their closed forms, trajectory-average cross-validation,
// and the trace/purity/hermiticity invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/common/error.hpp"
#include "qutes/sim/density_matrix.hpp"
#include "qutes/sim/noise.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;
using namespace qutes::sim::gates;

TEST(Density, InitialStateIsPureZero) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{1.0}), 0.0, 1e-12);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(Density, SizeLimits) {
  EXPECT_THROW(DensityMatrix(0), InvalidArgument);
  EXPECT_THROW(DensityMatrix(DensityMatrix::kMaxQubits + 1), SimulationError);
}

TEST(Density, TooWideRegisterErrorNamesLimitAndMpsEscapeHatch) {
  try {
    DensityMatrix rho(20);
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(std::to_string(DensityMatrix::kMaxQubits)),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("--backend mps"), std::string::npos) << message;
    EXPECT_NE(message.find("--backend stabilizer"), std::string::npos)
        << message;
  }
}

TEST(Density, UnitaryEvolutionMatchesStateVector) {
  // Random-ish 3-qubit circuit evolved both ways; fidelity must be 1.
  StateVector psi(3);
  DensityMatrix rho(3);
  const struct {
    Matrix2 u;
    std::size_t q;
  } layers[] = {{H(), 0}, {RY(0.7), 1}, {T(), 2}, {RX(1.3), 0}, {S(), 1}};
  for (const auto& layer : layers) {
    psi.apply_1q(layer.u, layer.q);
    rho.apply_1q(layer.u, layer.q);
  }
  psi.apply_controlled_1q(X(), 0, 1);
  const std::size_t c[1] = {0};
  rho.apply_multi_controlled_1q(X(), c, 1);
  psi.apply_swap(1, 2);
  rho.apply_swap(1, 2);

  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(Density, FromStatevector) {
  StateVector psi(2);
  psi.apply_1q(H(), 0);
  psi.apply_controlled_1q(X(), 0, 1);
  const DensityMatrix rho = DensityMatrix::from_statevector(psi);
  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-12);
  EXPECT_NEAR(rho.element(0, 3).real(), 0.5, 1e-12);  // Bell coherence
}

TEST(Density, ProbabilitiesMatchStateVector) {
  StateVector psi(3);
  psi.apply_1q(RY(0.9), 0);
  psi.apply_1q(RY(2.1), 2);
  const DensityMatrix rho = DensityMatrix::from_statevector(psi);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_NEAR(rho.probability_one(q), psi.probability_one(q), 1e-12);
  }
  const auto pd = rho.probabilities();
  const auto ps = psi.probabilities();
  for (std::size_t i = 0; i < pd.size(); ++i) EXPECT_NEAR(pd[i], ps[i], 1e-12);
}

// ---- exact channels against closed forms -----------------------------------------

TEST(Density, BitFlipClosedForm) {
  // |0><0| under bit flip p: P(1) = p.
  DensityMatrix rho(1);
  rho.apply_bit_flip(0, 0.3);
  EXPECT_NEAR(rho.probability_one(0), 0.3, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  // Purity of p|1><1| + (1-p)|0><0| is p^2 + (1-p)^2.
  EXPECT_NEAR(rho.purity(), 0.09 + 0.49, 1e-12);
}

TEST(Density, PhaseFlipKillsCoherence) {
  // |+><+| under phase flip p: off-diagonal scales by (1 - 2p).
  DensityMatrix rho(1);
  rho.apply_1q(H(), 0);
  rho.apply_phase_flip(0, 0.25);
  EXPECT_NEAR(rho.element(0, 1).real(), 0.5 * (1.0 - 2.0 * 0.25), 1e-12);
  EXPECT_NEAR(rho.probability_one(0), 0.5, 1e-12);  // populations untouched
}

TEST(Density, DepolarizingToMaximallyMixed) {
  DensityMatrix rho(1);
  rho.apply_1q(H(), 0);
  rho.apply_depolarizing(0, 1.0);
  // p = 1 symmetric depolarizing leaves rho = (1-4p/3) rho + ... -> for
  // p=3/4 fully mixed; at p=1 purity = (1 - 4/3 + 2*(2/3)^2)... check trace
  // and hermiticity plus population symmetry instead of the closed form.
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.probability_one(0), 0.5, 1e-12);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(Density, DepolarizingThreeQuartersIsFullyMixing) {
  DensityMatrix rho(1);
  rho.apply_1q(RY(0.8), 0);
  rho.apply_depolarizing(0, 0.75);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);  // maximally mixed single qubit
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, 1e-12);
}

TEST(Density, AmplitudeDampingClosedForm) {
  // |1><1| under damping gamma: P(1) = 1 - gamma.
  DensityMatrix rho(1);
  rho.apply_1q(X(), 0);
  rho.apply_amplitude_damping(0, 0.4);
  EXPECT_NEAR(rho.probability_one(0), 0.6, 1e-12);
  // Coherence of |+> scales by sqrt(1 - gamma).
  DensityMatrix plus(1);
  plus.apply_1q(H(), 0);
  plus.apply_amplitude_damping(0, 0.4);
  EXPECT_NEAR(plus.element(0, 1).real(), 0.5 * std::sqrt(0.6), 1e-12);
}

TEST(Density, PhaseDampingPreservesPopulations) {
  DensityMatrix rho(1);
  rho.apply_1q(RY(1.1), 0);
  const double p1 = rho.probability_one(0);
  rho.apply_phase_damping(0, 0.7);
  EXPECT_NEAR(rho.probability_one(0), p1, 1e-12);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(Density, ChannelValidatesCompleteness) {
  DensityMatrix rho(1);
  Matrix2 bad = gates::X();
  for (auto& m : bad.m) m *= 0.5;
  const Matrix2 kraus[1] = {bad};
  EXPECT_THROW(rho.apply_channel(kraus, 0), InvalidArgument);
}

// ---- trajectory-average cross-validation -----------------------------------------

TEST(Density, TrajectoryAverageConvergesToExactChannel) {
  // Depolarize |+> with p = 0.3: average the trajectory simulator over many
  // runs and compare <Z> and <X> against the exact density matrix.
  const double p = 0.3;
  DensityMatrix exact(1);
  exact.apply_1q(H(), 0);
  exact.apply_depolarizing(0, p);
  const double exact_coherence = exact.element(0, 1).real();

  Rng rng(42);
  double avg_coherence = 0.0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    StateVector psi(1);
    psi.apply_1q(H(), 0);
    apply_depolarizing(psi, 0, p, rng);
    // <X>/2 equals the real off-diagonal element for a 1-qubit pure state.
    psi.apply_1q(H(), 0);
    avg_coherence += 0.5 * psi.expectation_z(0);
  }
  avg_coherence /= trials;
  EXPECT_NEAR(avg_coherence, exact_coherence, 0.01);
}

TEST(Density, MeasurementCollapsesAndRenormalizes) {
  Rng rng(7);
  DensityMatrix rho(2);
  rho.apply_1q(H(), 0);
  const std::size_t c[1] = {0};
  rho.apply_multi_controlled_1q(X(), c, 1);  // Bell
  const int first = rho.measure(0, rng);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  const int second = rho.measure(1, rng);
  EXPECT_EQ(first, second);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);  // collapsed to a pure basis state
}

TEST(Density, MeasurementStatistics) {
  Rng rng(9);
  int ones = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    DensityMatrix rho(1);
    rho.apply_1q(RY(2.0 * std::asin(std::sqrt(0.3))), 0);
    ones += rho.measure(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.3, 0.02);
}

}  // namespace
