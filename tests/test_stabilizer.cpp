// Stabilizer (CHP) tableau tests: each Clifford gate against the textbook
// conjugation tables (read back as generator strings), deterministic vs
// random measurement branches, reset and c_if semantics, thread-count
// bit-identity of sampled counts, dense extraction, thousand-qubit GHZ and
// teleportation smoke runs, and executor-level rejection of non-Clifford
// gates via BackendCapabilities::supported_gates.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/stabilizer.hpp"

namespace circ = qutes::circ;
namespace sim = qutes::sim;
using qutes::CircuitError;
using qutes::InvalidArgument;
using qutes::Rng;
using sim::Stabilizer;

namespace {

std::uint64_t total_shots(const sim::Counts& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, n] : counts) total += n;
  return total;
}

}  // namespace

// ---- tableau initialization -------------------------------------------------

TEST(Stabilizer, InitialStateIsAllZeros) {
  Stabilizer tab(3);
  EXPECT_EQ(tab.num_qubits(), 3u);
  // |000> is stabilized by Z on each wire; destabilizers are the conjugate X.
  EXPECT_EQ(tab.stabilizer_string(0), "+ZII");
  EXPECT_EQ(tab.stabilizer_string(1), "+IZI");
  EXPECT_EQ(tab.stabilizer_string(2), "+IIZ");
  EXPECT_EQ(tab.destabilizer_string(0), "+XII");
  EXPECT_EQ(tab.destabilizer_string(1), "+IXI");
  EXPECT_EQ(tab.destabilizer_string(2), "+IIX");
}

TEST(Stabilizer, RejectsZeroQubitsAndOutOfRangeWires) {
  EXPECT_THROW(Stabilizer(0), InvalidArgument);
  Stabilizer tab(2);
  EXPECT_THROW(tab.apply_h(2), InvalidArgument);
  EXPECT_THROW(tab.apply_cx(0, 0), InvalidArgument);  // distinct wires required
  Rng rng(1);
  EXPECT_THROW(tab.measure(5, rng), InvalidArgument);
}

// ---- single-qubit gates vs the textbook conjugation table -------------------

TEST(Stabilizer, HadamardExchangesXAndZ) {
  Stabilizer tab(1);
  tab.apply_h(0);
  EXPECT_EQ(tab.stabilizer_string(0), "+X");    // H Z H = X
  EXPECT_EQ(tab.destabilizer_string(0), "+Z");  // H X H = Z
  tab.apply_h(0);
  EXPECT_EQ(tab.stabilizer_string(0), "+Z");  // self-inverse
}

TEST(Stabilizer, HadamardNegatesY) {
  // H Y H = -Y. Build a Y generator: S after H sends the stabilizer Z -> Y.
  Stabilizer tab(1);
  tab.apply_h(0);
  tab.apply_s(0);
  ASSERT_EQ(tab.stabilizer_string(0), "+Y");  // S X Sdg = Y
  tab.apply_h(0);
  EXPECT_EQ(tab.stabilizer_string(0), "-Y");
}

TEST(Stabilizer, PhaseGateSendsXToYAndFixesZ) {
  Stabilizer tab(1);
  tab.apply_s(0);
  EXPECT_EQ(tab.stabilizer_string(0), "+Z");  // S Z Sdg = Z
  EXPECT_EQ(tab.destabilizer_string(0), "+Y");  // S X Sdg = Y
  tab.apply_s(0);
  // S^2 = Z: X -> -X.
  EXPECT_EQ(tab.destabilizer_string(0), "-X");
}

TEST(Stabilizer, SdgUndoesSAndSendsXToMinusY) {
  Stabilizer tab(1);
  tab.apply_s(0);
  tab.apply_sdg(0);
  EXPECT_EQ(tab.stabilizer_string(0), "+Z");
  EXPECT_EQ(tab.destabilizer_string(0), "+X");
  tab.apply_sdg(0);
  EXPECT_EQ(tab.destabilizer_string(0), "-Y");  // Sdg X S = -Y
}

TEST(Stabilizer, PauliGatesFlipAnticommutingSigns) {
  {
    Stabilizer tab(1);
    tab.apply_x(0);
    EXPECT_EQ(tab.stabilizer_string(0), "-Z");    // X Z X = -Z
    EXPECT_EQ(tab.destabilizer_string(0), "+X");  // X X X = X
  }
  {
    Stabilizer tab(1);
    tab.apply_y(0);
    EXPECT_EQ(tab.stabilizer_string(0), "-Z");    // Y Z Y = -Z
    EXPECT_EQ(tab.destabilizer_string(0), "-X");  // Y X Y = -X
  }
  {
    Stabilizer tab(1);
    tab.apply_z(0);
    EXPECT_EQ(tab.stabilizer_string(0), "+Z");
    EXPECT_EQ(tab.destabilizer_string(0), "-X");  // Z X Z = -X
  }
}

// ---- two-qubit gates --------------------------------------------------------

TEST(Stabilizer, CxPropagatesXForwardAndZBackward) {
  Stabilizer tab(2);
  tab.apply_h(0);
  tab.apply_cx(0, 1);
  // The GHZ/Bell generators: X spreads control->target, Z target->control.
  EXPECT_EQ(tab.stabilizer_string(0), "+XX");  // CX (X I) CX = X X
  EXPECT_EQ(tab.stabilizer_string(1), "+ZZ");  // CX (I Z) CX = Z Z
}

TEST(Stabilizer, CxOnYControlPicksUpNoStraySign) {
  // CX (Y_c) CX = Y_c X_t; the x=z=1 column overlap is where naive phase
  // bookkeeping goes wrong, so pin it.
  Stabilizer tab(2);
  tab.apply_h(0);
  tab.apply_s(0);
  ASSERT_EQ(tab.stabilizer_string(0), "+YI");
  tab.apply_cx(0, 1);
  EXPECT_EQ(tab.stabilizer_string(0), "+YX");
}

TEST(Stabilizer, CzSpreadsZAcrossXGenerators) {
  Stabilizer tab(2);
  tab.apply_h(0);
  tab.apply_h(1);
  tab.apply_cz(0, 1);
  EXPECT_EQ(tab.stabilizer_string(0), "+XZ");  // CZ (X I) CZ = X Z
  EXPECT_EQ(tab.stabilizer_string(1), "+ZX");
}

TEST(Stabilizer, CzEqualsThreeGateIdentityOnY) {
  // CZ (Y_a) CZ = Y_a Z_b, with no sign. A Y input catches the phase term.
  Stabilizer tab(2);
  tab.apply_h(0);
  tab.apply_s(0);
  ASSERT_EQ(tab.stabilizer_string(0), "+YI");
  tab.apply_cz(0, 1);
  EXPECT_EQ(tab.stabilizer_string(0), "+YZ");
}

TEST(Stabilizer, SwapExchangesColumnsExactly) {
  Stabilizer tab(3);
  tab.apply_x(0);  // stabilizer 0 becomes -Z_0
  tab.apply_h(2);  // stabilizer 2 becomes +X_2
  tab.apply_swap(0, 2);
  EXPECT_EQ(tab.stabilizer_string(0), "-IIZ");
  EXPECT_EQ(tab.stabilizer_string(2), "+XII");
  // SWAP must equal its 3-CX decomposition, including on Y (sign-sensitive).
  Stabilizer direct(2), chained(2);
  direct.apply_h(0);
  direct.apply_s(0);
  chained.apply_h(0);
  chained.apply_s(0);
  direct.apply_swap(0, 1);
  chained.apply_cx(0, 1);
  chained.apply_cx(1, 0);
  chained.apply_cx(0, 1);
  EXPECT_EQ(direct.stabilizer_string(0), chained.stabilizer_string(0));
  EXPECT_EQ(direct.stabilizer_string(1), chained.stabilizer_string(1));
}

// ---- measurement ------------------------------------------------------------

TEST(Stabilizer, DeterministicMeasurementConsumesNoRandomness) {
  Stabilizer tab(2);
  tab.apply_x(0);
  Rng rng(7);
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_TRUE(tab.is_deterministic(1));
  EXPECT_EQ(tab.measure(0, rng), 1);
  EXPECT_EQ(tab.measure(1, rng), 0);
  EXPECT_EQ(tab.measurements(), 2u);
  EXPECT_EQ(tab.random_outcomes(), 0u);
}

TEST(Stabilizer, RandomMeasurementCollapsesAndThenRepeats) {
  Stabilizer tab(1);
  tab.apply_h(0);
  EXPECT_FALSE(tab.is_deterministic(0));
  Rng rng(3);
  const int first = tab.measure(0, rng);
  EXPECT_TRUE(first == 0 || first == 1);
  EXPECT_EQ(tab.random_outcomes(), 1u);
  // Collapsed: every further measurement is deterministic and identical.
  EXPECT_TRUE(tab.is_deterministic(0));
  EXPECT_EQ(tab.measure(0, rng), first);
  EXPECT_EQ(tab.measure(0, rng), first);
  EXPECT_EQ(tab.random_outcomes(), 1u);
}

TEST(Stabilizer, GhzMeasurementsArePerfectlyCorrelated) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Stabilizer tab(3);
    tab.apply_h(0);
    tab.apply_cx(0, 1);
    tab.apply_cx(1, 2);
    Rng rng(seed);
    const int first = tab.measure(0, rng);
    // One coin flip collapses the whole cat state.
    EXPECT_EQ(tab.measure(1, rng), first) << "seed=" << seed;
    EXPECT_EQ(tab.measure(2, rng), first) << "seed=" << seed;
    EXPECT_EQ(tab.random_outcomes(), 1u);
  }
}

TEST(Stabilizer, ResetForcesZeroFromAnyBranch) {
  Rng rng(11);
  {
    Stabilizer tab(1);
    tab.apply_x(0);
    tab.reset_qubit(0, rng);
    EXPECT_EQ(tab.stabilizer_string(0), "+Z");
    EXPECT_EQ(tab.measure(0, rng), 0);
  }
  // From superposition: both random branches land in |0>.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Stabilizer tab(2);
    tab.apply_h(0);
    tab.apply_cx(0, 1);
    Rng r(seed);
    tab.reset_qubit(0, r);
    EXPECT_EQ(tab.measure(0, r), 0) << "seed=" << seed;
  }
}

// ---- dense extraction -------------------------------------------------------

TEST(Stabilizer, ToStatevectorReproducesGhzAmplitudes) {
  Stabilizer tab(3);
  tab.apply_h(0);
  tab.apply_cx(0, 1);
  tab.apply_cx(1, 2);
  const std::vector<sim::cplx> amps = tab.to_statevector();
  ASSERT_EQ(amps.size(), 8u);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(amps[0]), inv_sqrt2, 1e-9);
  EXPECT_NEAR(std::abs(amps[7]), inv_sqrt2, 1e-9);
  for (std::size_t b = 1; b < 7; ++b) {
    EXPECT_NEAR(std::abs(amps[b]), 0.0, 1e-9) << "basis " << b;
  }
  // GHZ has a real positive relative phase between |000> and |111>.
  EXPECT_NEAR(std::abs(amps[0] + amps[7]), 2.0 * inv_sqrt2, 1e-9);
}

TEST(Stabilizer, ToStatevectorGuardsTheDenseCeiling) {
  Stabilizer tab(Stabilizer::kMaxDenseQubits + 1);
  EXPECT_THROW((void)tab.to_statevector(), qutes::SimulationError);
}

// ---- thousand-qubit smoke ---------------------------------------------------

TEST(Stabilizer, ThousandQubitGhzStaysCorrelated) {
  constexpr std::size_t n = 1000;
  Stabilizer tab(n);
  tab.apply_h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) tab.apply_cx(q, q + 1);
  // ~500 KB tableau, not 2^1000 amplitudes.
  EXPECT_LT(tab.memory_bytes(), std::size_t{1} << 21);
  Rng rng(5);
  const int first = tab.measure(0, rng);
  for (std::size_t q = 1; q < n; q += 97) {
    EXPECT_EQ(tab.measure(q, rng), first) << "qubit " << q;
  }
  EXPECT_EQ(tab.random_outcomes(), 1u);
}

TEST(Stabilizer, ThousandQubitExecutorGhzSamplesCatState) {
  constexpr std::size_t n = 1000;
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  options.shots = 32;
  const circ::ExecutionResult result = circ::Executor(options).run(c);
  EXPECT_EQ(result.backend, "stabilizer");
  EXPECT_TRUE(result.fast_path);
  EXPECT_EQ(total_shots(result.counts), 32u);
  const std::string zeros(n, '0'), ones(n, '1');
  for (const auto& [key, count] : result.counts) {
    EXPECT_TRUE(key == zeros || key == ones) << "non-cat outcome sampled";
  }
}

TEST(Stabilizer, TeleportationInsideAThousandQubitRegister) {
  // Teleport |1> from wire 0 to wire 999 through a Bell pair, Pauli
  // corrections conditioned on the two mid-circuit measurements (the dynamic
  // executor path: c_if + measured-qubit reuse ordering).
  constexpr std::size_t n = 1000;
  circ::QuantumCircuit c(n, n);
  const std::size_t src = 0, mid = 1, dst = n - 1;
  c.x(src);  // state to teleport: |1>
  c.h(mid);
  c.cx(mid, dst);  // Bell pair between helper and destination
  c.cx(src, mid);
  c.h(src);
  c.measure(src, 0);
  c.measure(mid, 1);
  c.x(dst).c_if(1, 1);
  c.z(dst).c_if(0, 1);
  c.measure(dst, 2);
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  options.shots = 24;
  const circ::ExecutionResult result = circ::Executor(options).run(c);
  EXPECT_FALSE(result.fast_path);  // conditions force per-shot trajectories
  for (const auto& [key, count] : result.counts) {
    // Clbit 2 is the teleported state; MSB-first keys put it at index n-1-2.
    EXPECT_EQ(key[n - 1 - 2], '1') << "teleported qubit lost its state";
  }
  EXPECT_EQ(total_shots(result.counts), 24u);
}

// ---- executor semantics -----------------------------------------------------

TEST(Stabilizer, CountsAreBitIdenticalAcrossThreadCounts) {
  circ::QuantumCircuit c(6, 6);
  c.h(0);
  for (std::size_t q = 0; q + 1 < 6; ++q) c.cx(q, q + 1);
  c.s(2);
  c.h(3);
  c.cz(3, 4);
  c.measure_all();
  qutes::RunConfig parallel;
  parallel.backend.name = "stabilizer";
  parallel.shots = 512;
  parallel.backend.parallel_shots = true;
  qutes::RunConfig serial = parallel;
  serial.backend.parallel_shots = false;
  const sim::Counts a = circ::Executor(parallel).run(c).counts;
  const sim::Counts b = circ::Executor(serial).run(c).counts;
  EXPECT_EQ(a, b);
}

TEST(Stabilizer, CifGatesFollowTheMeasuredBit) {
  // measure(H|0>) then copy the bit onto wire 1 via a conditioned X: the two
  // clbits must agree on every shot.
  circ::QuantumCircuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.x(1).c_if(0, 1);
  c.measure(1, 1);
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  options.shots = 256;
  const circ::ExecutionResult result = circ::Executor(options).run(c);
  std::uint64_t seen = 0;
  for (const auto& [key, count] : result.counts) {
    EXPECT_TRUE(key == "00" || key == "11") << "c_if missed: " << key;
    seen += count;
  }
  EXPECT_EQ(seen, 256u);
  EXPECT_EQ(result.counts.size(), 2u) << "H coin never landed on one side";
}

TEST(Stabilizer, RejectsNonCliffordGatesByName) {
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  {
    circ::QuantumCircuit c(2, 2);
    c.h(0);
    c.t(1);
    c.measure_all();
    try {
      (void)circ::Executor(options).run(c);
      FAIL() << "stabilizer accepted a T gate";
    } catch (const CircuitError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("does not implement gate t"), std::string::npos)
          << what;
      EXPECT_NE(what.find("swap"), std::string::npos)
          << "message should list the supported Clifford set: " << what;
    }
  }
  {
    circ::QuantumCircuit c(1, 1);
    c.rx(0.3, 0);
    c.measure_all();
    EXPECT_THROW((void)circ::Executor(options).run(c), CircuitError);
  }
}

TEST(Stabilizer, EvolveStabilizerRefusesMeasurementsAndNonClifford) {
  {
    circ::QuantumCircuit c(1, 1);
    c.h(0);
    c.measure(0, 0);
    EXPECT_THROW((void)circ::evolve_stabilizer(c), CircuitError);
  }
  {
    circ::QuantumCircuit c(1, 1);
    c.t(0);
    EXPECT_THROW((void)circ::evolve_stabilizer(c), CircuitError);
  }
  circ::QuantumCircuit ok(2, 2);
  ok.h(0);
  ok.cx(0, 1);
  const Stabilizer tab = circ::evolve_stabilizer(ok);
  EXPECT_EQ(tab.stabilizer_string(0), "+XX");
}
