// QFT and adder tests: exhaustive modular-arithmetic sweeps for both adder
// families (Draper and Cuccaro), constant additions, negation, and
// multiplication — the circuits behind the DSL's quint arithmetic (E1).
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/algorithms/adders.hpp"
#include "qutes/algorithms/qft.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t begin, std::size_t count) {
  std::vector<std::size_t> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = begin + i;
  return v;
}

/// Run a unitary circuit on |basis> and return the measured basis state
/// (deterministic circuits only).
std::uint64_t run_on_basis(const QuantumCircuit& c, std::uint64_t basis) {
  QuantumCircuit prep(c.num_qubits());
  for (std::size_t q = 0; q < c.num_qubits(); ++q) {
    if (test_bit(basis, q)) prep.x(q);
  }
  prep.compose(c, iota(0, c.num_qubits()));
  Executor ex({.shots = 1, .seed = 2});
  const auto traj = ex.run_single(prep);
  // The result must be a computational basis state.
  for (std::uint64_t i = 0; i < traj.state.dim(); ++i) {
    if (std::norm(traj.state.amplitude(i)) > 0.5) return i;
  }
  ADD_FAILURE() << "state is not a basis state";
  return 0;
}

TEST(Qft, QftOnZeroIsUniform) {
  const QuantumCircuit qft = make_qft(3);
  Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(qft);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::norm(traj.state.amplitude(i)), 1.0 / 8.0, 1e-12);
  }
}

TEST(Qft, InverseUndoes) {
  QuantumCircuit c(4);
  for (std::size_t q = 0; q < 4; ++q) c.ry(0.2 + 0.3 * static_cast<double>(q), q);
  const auto qubits = iota(0, 4);
  QuantumCircuit full = c;
  append_qft(full, qubits);
  append_iqft(full, qubits);
  Executor ex({.shots = 1, .seed = 1});
  EXPECT_NEAR(ex.run_single(full).state.fidelity(ex.run_single(c).state), 1.0, 1e-9);
}

TEST(Qft, MatchesAnalyticAmplitudes) {
  // QFT|x> amplitudes: e^{2 pi i x k / N} / sqrt(N).
  const std::size_t n = 3;
  const std::uint64_t x = 5;
  QuantumCircuit c(n);
  for (std::size_t q = 0; q < n; ++q) {
    if (test_bit(x, q)) c.x(q);
  }
  append_qft(c, iota(0, n));
  Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  const double norm = 1.0 / std::sqrt(8.0);
  for (std::uint64_t k = 0; k < 8; ++k) {
    const double phase = 2.0 * M_PI * static_cast<double>(x * k) / 8.0;
    const sim::cplx expect = norm * std::exp(sim::cplx{0.0, phase});
    EXPECT_NEAR(std::abs(traj.state.amplitude(k) - expect), 0.0, 1e-9) << "k=" << k;
  }
}

// ---- Draper quantum-quantum adder -------------------------------------------

class DraperAdder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DraperAdder, ExhaustiveModularSweep) {
  const std::size_t n = GetParam();
  QuantumCircuit adder(2 * n);
  append_draper_adder(adder, iota(0, n), iota(n, n));
  const std::uint64_t mod = dim_of(n);
  for (std::uint64_t a = 0; a < mod; ++a) {
    for (std::uint64_t b = 0; b < mod; ++b) {
      const std::uint64_t input = a | (b << n);
      const std::uint64_t output = run_on_basis(adder, input);
      EXPECT_EQ(output & (mod - 1), a) << "a register must be preserved";
      EXPECT_EQ(output >> n, (a + b) % mod) << a << " + " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DraperAdder, ::testing::Values(1u, 2u, 3u));

TEST(DraperSubtractor, ExhaustiveSweepWidth3) {
  const std::size_t n = 3;
  QuantumCircuit sub(2 * n);
  append_draper_subtractor(sub, iota(0, n), iota(n, n));
  const std::uint64_t mod = dim_of(n);
  for (std::uint64_t a = 0; a < mod; ++a) {
    for (std::uint64_t b = 0; b < mod; ++b) {
      const std::uint64_t output = run_on_basis(sub, a | (b << n));
      EXPECT_EQ(output >> n, (b + mod - a) % mod) << b << " - " << a;
    }
  }
}

TEST(DraperAdder, MixedWidthNarrowIntoWide) {
  // |a| = 2 added into |b| = 4.
  QuantumCircuit adder(6);
  append_draper_adder(adder, iota(0, 2), iota(2, 4));
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b : {0ULL, 3ULL, 9ULL, 15ULL}) {
      const std::uint64_t output = run_on_basis(adder, a | (b << 2));
      EXPECT_EQ(output >> 2, (a + b) % 16);
    }
  }
}

TEST(DraperAdder, SuperposedInputProducesSuperposedSum) {
  // b = |2>, a = (|0> + |1>)/sqrt2  ->  b' = (|2> + |3>)/sqrt2 entangled.
  QuantumCircuit c(4);
  c.h(0);            // a in superposition of 0, 1 (width 2, high bit 0)
  c.x(2);            // b = 2 (qubits 2..3, bit 1 of b is qubit 3) -> b=1? no:
  // qubit 2 is b bit 0, so x(2) sets b = 1. Use b = 1 then.
  append_draper_adder(c, iota(0, 2), iota(2, 2));
  Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  // States |a=0, b=1> and |a=1, b=2>: indices 0b0100 and 0b1001.
  EXPECT_NEAR(std::norm(traj.state.amplitude(0b0100)), 0.5, 1e-9);
  EXPECT_NEAR(std::norm(traj.state.amplitude(0b1001)), 0.5, 1e-9);
}

TEST(DraperAdder, RejectsBadShapes) {
  QuantumCircuit c(4);
  EXPECT_THROW(append_draper_adder(c, iota(0, 3), iota(2, 2)), Error);  // overlap
  EXPECT_THROW(append_draper_adder(c, iota(0, 3), iota(3, 1)), Error);  // |a|>|b|
}

// ---- constant addition --------------------------------------------------------

class DraperConst : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DraperConst, AddsConstantMod16) {
  const std::uint64_t k = GetParam();
  QuantumCircuit c(4);
  append_draper_add_const(c, iota(0, 4), k);
  for (std::uint64_t b = 0; b < 16; ++b) {
    EXPECT_EQ(run_on_basis(c, b), (b + k) % 16) << b << " + " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, DraperConst,
                         ::testing::Values(0u, 1u, 5u, 7u, 15u, 16u, 23u));

TEST(DraperConst, SubtractsConstant) {
  QuantumCircuit c(3);
  append_draper_sub_const(c, iota(0, 3), 3);
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(run_on_basis(c, b), (b + 8 - 3) % 8);
  }
}

TEST(Negate, TwosComplement) {
  QuantumCircuit c(3);
  append_negate(c, iota(0, 3));
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(run_on_basis(c, b), (8 - b) % 8);
  }
}

// ---- Cuccaro ripple-carry adder ------------------------------------------------

class CuccaroAdder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CuccaroAdder, ExhaustiveModularSweep) {
  const std::size_t n = GetParam();
  QuantumCircuit adder(2 * n + 1);  // last qubit = ancilla
  append_cuccaro_adder(adder, iota(0, n), iota(n, n), 2 * n);
  const std::uint64_t mod = dim_of(n);
  for (std::uint64_t a = 0; a < mod; ++a) {
    for (std::uint64_t b = 0; b < mod; ++b) {
      const std::uint64_t output = run_on_basis(adder, a | (b << n));
      EXPECT_EQ(output & (mod - 1), a) << "a preserved";
      EXPECT_EQ((output >> n) & (mod - 1), (a + b) % mod) << a << "+" << b;
      EXPECT_EQ(output >> (2 * n), 0u) << "ancilla returned clean";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CuccaroAdder, ::testing::Values(1u, 2u, 3u));

TEST(CuccaroSubtractor, InvertsAdder) {
  const std::size_t n = 3;
  QuantumCircuit sub(2 * n + 1);
  append_cuccaro_subtractor(sub, iota(0, n), iota(n, n), 2 * n);
  const std::uint64_t mod = dim_of(n);
  for (std::uint64_t a = 0; a < mod; ++a) {
    for (std::uint64_t b = 0; b < mod; ++b) {
      const std::uint64_t output = run_on_basis(sub, a | (b << n));
      EXPECT_EQ((output >> n) & (mod - 1), (b + mod - a) % mod);
    }
  }
}

TEST(CuccaroAdder, AgreesWithDraperOnSuperpositions) {
  const std::size_t n = 3;
  QuantumCircuit c1(2 * n + 1), c2(2 * n + 1);
  for (QuantumCircuit* c : {&c1, &c2}) {
    c->h(0);
    c->ry(0.8, 1);
    c->x(n);
    c->ry(1.3, n + 1);
  }
  append_draper_adder(c1, iota(0, n), iota(n, n));
  append_cuccaro_adder(c2, iota(0, n), iota(n, n), 2 * n);
  Executor ex({.shots = 1, .seed = 1});
  EXPECT_NEAR(ex.run_single(c1).state.fidelity(ex.run_single(c2).state), 1.0, 1e-9);
}

// ---- constant multiplication ----------------------------------------------------

TEST(MulConst, AccumulatesProduct) {
  // out(4 qubits) += b(2 qubits) * 3.
  QuantumCircuit c(6);
  append_mul_const_accumulate(c, iota(0, 2), iota(2, 4), 3);
  for (std::uint64_t b = 0; b < 4; ++b) {
    const std::uint64_t output = run_on_basis(c, b);
    EXPECT_EQ(output >> 2, (b * 3) % 16) << "b=" << b;
    EXPECT_EQ(output & 3, b) << "b preserved";
  }
}

TEST(MulConst, ZeroFactorLeavesOutputClean) {
  QuantumCircuit c(5);
  append_mul_const_accumulate(c, iota(0, 2), iota(2, 3), 0);
  EXPECT_EQ(run_on_basis(c, 3) >> 2, 0u);
}

// ---- resource comparison (the E1 tradeoff) --------------------------------------

TEST(AdderResources, DraperNeedsNoAncillaCuccaroIsLinear) {
  const std::size_t n = 6;
  QuantumCircuit draper(2 * n);
  append_draper_adder(draper, iota(0, n), iota(n, n));
  QuantumCircuit cuccaro(2 * n + 1);
  append_cuccaro_adder(cuccaro, iota(0, n), iota(n, n), 2 * n);

  // Draper uses only cp/h/swap-free phases; Cuccaro only cx/ccx.
  for (const auto& [name, count] : draper.count_ops()) {
    EXPECT_TRUE(name == "cp" || name == "h") << name;
  }
  for (const auto& [name, count] : cuccaro.count_ops()) {
    EXPECT_TRUE(name == "cx" || name == "ccx") << name;
  }
  // Cuccaro gate count is linear in n: 6n + O(1) two-qubit-ish ops.
  EXPECT_LE(cuccaro.gate_count(), 6 * n + 2);
  // Draper is quadratic: ~n^2/2 controlled phases plus 2 QFTs.
  EXPECT_GE(draper.count_ops().at("cp"), n * (n - 1) / 2);
}

}  // namespace
