// Unit + property tests for the dense state-vector simulator: kernel
// correctness against hand-computed states, measurement statistics,
// collapse, register growth, norms, and entanglement correlators.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/sim/statevector.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;
using gates::H;
using gates::P;
using gates::RX;
using gates::RZ;
using gates::RY;
using gates::X;
using gates::Y;
using gates::Z;

constexpr double kTol = 1e-12;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.num_qubits(), 3u);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{1.0}), 0.0, kTol);
  for (std::uint64_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kTol);
  }
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, RejectsZeroAndHugeRegisters) {
  EXPECT_THROW(StateVector(0), InvalidArgument);
  EXPECT_THROW(StateVector(StateVector::kMaxQubits + 1), SimulationError);
}

TEST(StateVector, TooWideRegisterErrorNamesLimitAndMpsEscapeHatch) {
  // The guard must tell the user what the ceiling is and where to go next.
  try {
    StateVector sv(48);
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(std::to_string(StateVector::kMaxQubits)),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("--backend mps"), std::string::npos) << message;
    EXPECT_NE(message.find("--backend stabilizer"), std::string::npos)
        << message;
  }
}

TEST(StateVector, XFlipsBasis) {
  StateVector sv(2);
  sv.apply_1q(X(), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - cplx{1.0}), 0.0, kTol);
  sv.apply_1q(X(), 1);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{1.0}), 0.0, kTol);
}

TEST(StateVector, HadamardCreatesUniform) {
  StateVector sv(3);
  for (std::size_t q = 0; q < 3; ++q) sv.apply_1q(H(), q);
  const double amp = 1.0 / std::sqrt(8.0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i) - cplx{amp}), 0.0, kTol);
  }
}

TEST(StateVector, HadamardTwiceIsIdentity) {
  StateVector sv(1);
  sv.apply_1q(H(), 0);
  sv.apply_1q(H(), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{1.0}), 0.0, kTol);
}

TEST(StateVector, BellStateViaHAndCx) {
  StateVector sv(2);
  sv.apply_1q(H(), 0);
  sv.apply_controlled_1q(X(), 0, 1);
  const double amp = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{amp}), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{amp}), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, kTol);
  EXPECT_NEAR(sv.expectation_zz(0, 1), 1.0, kTol);
}

TEST(StateVector, ControlledGateRespectsControl) {
  StateVector sv(2);           // |00>
  sv.apply_controlled_1q(X(), 0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{1.0}), 0.0, kTol);  // unchanged
  sv.apply_1q(X(), 0);         // |01>
  sv.apply_controlled_1q(X(), 0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{1.0}), 0.0, kTol);  // |11>
}

TEST(StateVector, MultiControlledOnlyFiresOnAllOnes) {
  StateVector sv(4);
  const std::size_t controls[3] = {0, 1, 2};
  // |0111>: controls all set, target 3 clear.
  sv.set_basis_state(0b0111);
  sv.apply_multi_controlled_1q(X(), controls, 3);
  EXPECT_NEAR(std::abs(sv.amplitude(0b1111) - cplx{1.0}), 0.0, kTol);
  // |0011>: one control clear -> no action.
  sv.set_basis_state(0b0011);
  sv.apply_multi_controlled_1q(X(), controls, 3);
  EXPECT_NEAR(std::abs(sv.amplitude(0b0011) - cplx{1.0}), 0.0, kTol);
}

TEST(StateVector, SwapPermutesBasis) {
  StateVector sv(3);
  sv.set_basis_state(0b001);
  sv.apply_swap(0, 2);
  EXPECT_NEAR(std::abs(sv.amplitude(0b100) - cplx{1.0}), 0.0, kTol);
}

TEST(StateVector, SwapEqualsThreeCx) {
  StateVector a(2), b(2);
  a.apply_1q(RY(0.7), 0);
  a.apply_1q(RX(1.1), 1);
  b.apply_1q(RY(0.7), 0);
  b.apply_1q(RX(1.1), 1);
  a.apply_swap(0, 1);
  b.apply_controlled_1q(X(), 0, 1);
  b.apply_controlled_1q(X(), 1, 0);
  b.apply_controlled_1q(X(), 0, 1);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-10);
}

TEST(StateVector, PhaseGateAddsPhaseToOne) {
  StateVector sv(1);
  sv.apply_1q(H(), 0);
  sv.apply_phase(M_PI / 2, 0);  // S
  const double amp = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - cplx{0.0, amp}), 0.0, kTol);
}

TEST(StateVector, PhaseKernelMatchesMatrix) {
  StateVector a(2), b(2);
  a.apply_1q(H(), 0);
  a.apply_1q(H(), 1);
  b.apply_1q(H(), 0);
  b.apply_1q(H(), 1);
  a.apply_phase(0.37, 1);
  b.apply_1q(P(0.37), 1);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
  // Amplitudes must match exactly (not just up to phase).
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kTol);
  }
}

TEST(StateVector, CPhaseOnlyPhasesBothOnes) {
  StateVector sv(2);
  for (std::size_t q = 0; q < 2; ++q) sv.apply_1q(H(), q);
  sv.apply_cphase(M_PI, 0, 1);  // CZ
  EXPECT_GT(sv.amplitude(0).real(), 0.0);
  EXPECT_GT(sv.amplitude(1).real(), 0.0);
  EXPECT_GT(sv.amplitude(2).real(), 0.0);
  EXPECT_LT(sv.amplitude(3).real(), 0.0);
}

TEST(StateVector, Apply2qGeneralMatchesKron) {
  // Random-ish product gate applied via apply_2q must match applying the
  // factors separately.
  StateVector a(3), b(3);
  a.apply_1q(RY(0.4), 0);
  a.apply_1q(RY(1.3), 2);
  b.apply_1q(RY(0.4), 0);
  b.apply_1q(RY(1.3), 2);
  const Matrix4 u = kron(RX(0.9), RZ(0.5));  // RZ on q0, RX on q2
  a.apply_2q(u, 0, 2);
  b.apply_1q(RZ(0.5), 0);
  b.apply_1q(RX(0.9), 2);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVector, ProbabilityOne) {
  StateVector sv(2);
  sv.apply_1q(RY(2.0 * std::asin(std::sqrt(0.3))), 0);  // P(1) = 0.3
  EXPECT_NEAR(sv.probability_one(0), 0.3, 1e-12);
  EXPECT_NEAR(sv.probability_one(1), 0.0, 1e-12);
}

TEST(StateVector, MeasureCollapsesAndNormalizes) {
  Rng rng(5);
  StateVector sv(2);
  sv.apply_1q(H(), 0);
  sv.apply_controlled_1q(X(), 0, 1);  // Bell
  const int first = sv.measure(0, rng);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
  // After measuring qubit 0 of a Bell pair, qubit 1 is determined.
  const int second = sv.measure(1, rng);
  EXPECT_EQ(first, second);
}

TEST(StateVector, MeasurementStatistics) {
  // P(1) = 0.25 rotation: relative frequency over many trials.
  int ones = 0;
  const int trials = 20000;
  Rng rng(7);
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    sv.apply_1q(RY(2.0 * std::asin(0.5)), 0);  // amplitude 0.5 -> P(1)=0.25
    ones += sv.measure(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.25, 0.02);
}

TEST(StateVector, SampleCountsSumToShots) {
  StateVector sv(3);
  for (std::size_t q = 0; q < 3; ++q) sv.apply_1q(H(), q);
  Rng rng(11);
  const Counts counts = sv.sample_counts(4096, rng);
  std::uint64_t total = 0;
  for (const auto& [key, n] : counts) {
    EXPECT_EQ(key.size(), 3u);
    total += n;
  }
  EXPECT_EQ(total, 4096u);
  EXPECT_EQ(counts.size(), 8u);  // uniform over 8 states, 4096 shots
}

TEST(StateVector, SampleCountsSubsetOfQubits) {
  StateVector sv(3);
  sv.apply_1q(X(), 2);
  Rng rng(13);
  const std::size_t qubits[1] = {2};
  const Counts counts = sv.sample_counts(100, rng, qubits);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, "1");
}

TEST(StateVector, MeasureAllCollapsesToBasis) {
  Rng rng(3);
  StateVector sv(4);
  for (std::size_t q = 0; q < 4; ++q) sv.apply_1q(H(), q);
  const std::uint64_t outcome = sv.measure_all(rng);
  EXPECT_LT(outcome, 16u);
  EXPECT_NEAR(std::abs(sv.amplitude(outcome) - cplx{1.0}), 0.0, kTol);
}

TEST(StateVector, ResetForcesZero) {
  Rng rng(9);
  for (int t = 0; t < 20; ++t) {
    StateVector sv(1);
    sv.apply_1q(H(), 0);
    sv.reset_qubit(0, rng);
    EXPECT_NEAR(sv.probability_one(0), 0.0, kTol);
  }
}

TEST(StateVector, AddQubitsPreservesState) {
  StateVector sv(1);
  sv.apply_1q(H(), 0);
  sv.add_qubits(2);
  EXPECT_EQ(sv.num_qubits(), 3u);
  const double amp = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{amp}), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - cplx{amp}), 0.0, kTol);
  for (std::uint64_t i = 2; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kTol);
  }
}

TEST(StateVector, FromAmplitudesValidates) {
  EXPECT_THROW(StateVector::from_amplitudes({cplx{1.0}}), InvalidArgument);
  EXPECT_THROW(StateVector::from_amplitudes({cplx{1.0}, cplx{1.0}}), InvalidArgument);
  const double amp = 1.0 / std::sqrt(2.0);
  const StateVector sv =
      StateVector::from_amplitudes({cplx{amp}, cplx{0.0}, cplx{0.0}, cplx{amp}});
  EXPECT_EQ(sv.num_qubits(), 2u);
}

TEST(StateVector, InnerProductAndFidelity) {
  StateVector a(1), b(1);
  a.apply_1q(H(), 0);
  // <0|+> = 1/sqrt(2).
  EXPECT_NEAR(std::abs(b.inner_product(a)), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(b.fidelity(a), 0.5, kTol);
  b.apply_1q(H(), 0);
  EXPECT_NEAR(b.fidelity(a), 1.0, kTol);
}

TEST(StateVector, ExpectationZ) {
  StateVector sv(1);
  EXPECT_NEAR(sv.expectation_z(0), 1.0, kTol);
  sv.apply_1q(X(), 0);
  EXPECT_NEAR(sv.expectation_z(0), -1.0, kTol);
  sv.apply_1q(H(), 0);
  EXPECT_NEAR(sv.expectation_z(0), 0.0, kTol);
}

TEST(StateVector, GlobalPhaseInvisibleToFidelity) {
  StateVector a(2), b(2);
  a.apply_1q(H(), 0);
  b.apply_1q(H(), 0);
  a.apply_global_phase(1.234);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(StateVector, QubitIndexValidation) {
  StateVector sv(2);
  EXPECT_THROW(sv.apply_1q(X(), 2), InvalidArgument);
  EXPECT_THROW(sv.apply_swap(0, 5), InvalidArgument);
  EXPECT_THROW((void)sv.probability_one(9), InvalidArgument);
  const std::size_t controls[1] = {1};
  EXPECT_THROW(sv.apply_multi_controlled_1q(X(), controls, 1), InvalidArgument);
}

// Property sweep: unitarity of the kernels — applying gate then adjoint
// restores the state, for every qubit position in a 5-qubit register.
class KernelInversion : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelInversion, GateThenAdjointRestores) {
  const std::size_t target = GetParam();
  Rng rng(100 + target);
  StateVector sv(5);
  // Scramble with a few layers so the state is generic.
  for (std::size_t q = 0; q < 5; ++q) sv.apply_1q(RY(0.3 + 0.2 * q), q);
  for (std::size_t q = 0; q + 1 < 5; ++q) sv.apply_controlled_1q(X(), q, q + 1);
  StateVector ref = sv;
  for (const Matrix2& u : {H(), X(), Y(), Z(), RX(0.77), P(1.3)}) {
    sv.apply_1q(u, target);
    sv.apply_1q(u.adjoint(), target);
  }
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, KernelInversion,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
