// Unit tests for the deterministic RNG (qutes::Rng, xoshiro256**).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "qutes/common/rng.hpp"

namespace {

using qutes::Rng;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(17);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(33);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Splitmix, ProducesDistinctExpansion) {
  std::uint64_t state = 42;
  const auto a = qutes::splitmix64(state);
  const auto b = qutes::splitmix64(state);
  const auto c = qutes::splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

}  // namespace
