// Randomized equivalence suite for the runtime gate-fusion engine
// (fusion.hpp + StateVector::apply_kq) and the parallel trajectory loop:
// fused execution must match gate-at-a-time execution, and noisy counts must
// be bit-identical for a fixed seed at any thread count.
#include <gtest/gtest.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdint>
#include <vector>

#include "qutes/algorithms/grover.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/fusion.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/statevector.hpp"
#include "qutes/testing/generators.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

/// Random unitary mix over `n` qubits from the shared generator (barriers
/// and GlobalPhase off: these suites assert on raw plan structure, where an
/// extra non-gate instruction would shift indices).
QuantumCircuit random_circuit(std::size_t n, std::size_t gates, Rng& rng) {
  qutes::testing::CircuitGenOptions options;
  options.num_qubits = n;
  options.gates = gates;
  options.allow_barrier = false;
  options.allow_global_phase = false;
  return qutes::testing::random_circuit(rng.below(std::uint64_t{1} << 32),
                                        options);
}

/// Gate-at-a-time reference evolution.
sim::StateVector evolve_unfused(const QuantumCircuit& c) {
  sim::StateVector sv(c.num_qubits());
  std::uint64_t scratch = 0;
  Rng rng(0);
  for (const Instruction& in : c.instructions()) {
    apply_instruction(sv, in, scratch, rng);
  }
  return sv;
}

/// Evolution through a fusion plan.
sim::StateVector evolve_fused(const QuantumCircuit& c, std::size_t max_fused) {
  FusionOptions options;
  options.max_fused_qubits = max_fused;
  const FusionPlan plan = build_fusion_plan(c.instructions(), options);
  sim::StateVector sv(c.num_qubits());
  std::uint64_t scratch = 0;
  Rng rng(0);
  for (const FusedOp& op : plan.ops) {
    if (op.fused) {
      sv.apply_kq(op.matrix, op.qubits);
    } else {
      apply_instruction(sv, c.instructions()[op.instruction], scratch, rng);
    }
  }
  return sv;
}

TEST(FusionEngine, FusedStateMatchesUnfusedOnRandomCircuits) {
  Rng rng(0xf05e);
  for (std::size_t n = 2; n <= 10; ++n) {
    for (std::size_t max_fused = 2; max_fused <= 5; ++max_fused) {
      const QuantumCircuit c = random_circuit(n, 12 * n, rng);
      const sim::StateVector reference = evolve_unfused(c);
      const sim::StateVector fused = evolve_fused(c, max_fused);
      EXPECT_NEAR(fused.fidelity(reference), 1.0, 1e-9)
          << "n=" << n << " max_fused=" << max_fused;
    }
  }
}

TEST(FusionEngine, PlanAbsorbsGatesAndRespectsWidthLimit) {
  Rng rng(77);
  const QuantumCircuit c = random_circuit(8, 120, rng);
  for (std::size_t max_fused = 2; max_fused <= 5; ++max_fused) {
    FusionOptions options;
    options.max_fused_qubits = max_fused;
    const FusionPlan plan = build_fusion_plan(c.instructions(), options);
    EXPECT_GT(plan.fused_gates, 0u);
    for (const auto& [width, blocks] : plan.width_histogram) {
      EXPECT_LE(width, max_fused);
      EXPECT_GT(blocks, 0u);
    }
    for (const FusedOp& op : plan.ops) {
      if (op.fused) {
        EXPECT_LE(op.qubits.size(), max_fused);
        EXPECT_GE(op.gate_count, 2u);
        EXPECT_TRUE(op.matrix.is_unitary(1e-8));
      }
    }
  }
}

TEST(FusionEngine, DisabledFusionReplaysSourceVerbatim) {
  Rng rng(5);
  const QuantumCircuit c = random_circuit(5, 40, rng);
  FusionOptions options;
  options.max_fused_qubits = 1;
  const FusionPlan plan = build_fusion_plan(c.instructions(), options);
  ASSERT_EQ(plan.ops.size(), c.instructions().size());
  EXPECT_EQ(plan.fused_gates, 0u);
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    EXPECT_FALSE(plan.ops[i].fused);
    EXPECT_EQ(plan.ops[i].instruction, i);
  }
  // And the executor produces identical counts with fusion on vs off: the
  // sampling RNG stream does not depend on how the state was evolved.
  QuantumCircuit measured = c;
  measured.measure_all();
  qutes::RunConfig on;
  on.shots = 256;
  on.seed = 11;
  qutes::RunConfig off = on;
  off.backend.max_fused_qubits = 1;
  const auto fused = Executor(on).run(measured);
  const auto unfused = Executor(off).run(measured);
  EXPECT_GT(fused.fused_gates, 0u);
  EXPECT_EQ(unfused.fused_gates, 0u);
  EXPECT_EQ(fused.counts, unfused.counts);
}

TEST(FusionEngine, InstructionMatrixMatchesDirectApplication) {
  Rng rng(123);
  for (int rep = 0; rep < 20; ++rep) {
    const QuantumCircuit c = random_circuit(4, 1, rng);
    ASSERT_EQ(c.size(), 1u);
    const Instruction& in = c.instructions()[0];
    const sim::MatrixN mat = instruction_matrix(in);
    EXPECT_TRUE(mat.is_unitary(1e-10));
    // Apply to a random product state both ways.
    sim::StateVector a(4), b(4);
    for (std::size_t q = 0; q < 4; ++q) {
      const double theta = rng.uniform() * 3.0;
      a.apply_1q(sim::gates::RY(theta), q);
      b.apply_1q(sim::gates::RY(theta), q);
    }
    std::uint64_t scratch = 0;
    Rng dummy(0);
    apply_instruction(a, in, scratch, dummy);
    b.apply_kq(mat, in.qubits);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-10);
  }
}

TEST(FusionEngine, MeasureAndConditionBreakFusionCorrectly) {
  // Teleport-style dynamic circuit: mid-circuit measurement plus conditioned
  // corrections. Fusion must not move gates across either.
  QuantumCircuit c(2, 2);
  c.h(0).h(1).cx(0, 1).measure(0, 0);
  c.x(1).c_if(0, 1);
  c.h(1).measure(1, 1);
  qutes::RunConfig on;
  on.shots = 400;
  on.seed = 3;
  qutes::RunConfig off = on;
  off.backend.max_fused_qubits = 1;
  const auto fused = Executor(on).run(c);
  const auto unfused = Executor(off).run(c);
  // Per-shot RNG streams are identical with fusion on or off (fused blocks
  // consume no randomness), so the counts must agree exactly.
  EXPECT_EQ(fused.counts, unfused.counts);
}

TEST(FusionEngine, NoisyCountsBitIdenticalAcrossThreadCounts) {
  Rng rng(9);
  QuantumCircuit c = random_circuit(4, 30, rng);
  c.measure_all();
  qutes::RunConfig o;
  o.shots = 500;
  o.seed = 21;
  o.record_memory = true;
  o.backend.noise.depolarizing_1q = 0.02;
  o.backend.noise.depolarizing_2q = 0.05;
  o.backend.noise.readout_error = 0.01;

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  std::vector<sim::Counts> counts;
  std::vector<std::vector<std::string>> memories;
  for (const int threads : {1, 2, 8}) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    const auto result = Executor(o).run(c);
    EXPECT_FALSE(result.fast_path);
    counts.push_back(result.counts);
    memories.push_back(result.memory);
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_EQ(memories[0], memories[1]);
  EXPECT_EQ(memories[0], memories[2]);
}

TEST(FusionEngine, ReadoutOnlyNoiseStillFusesAndMatchesUnfused) {
  Rng rng(31);
  QuantumCircuit c = random_circuit(5, 40, rng);
  c.measure_all();
  qutes::RunConfig o;
  o.shots = 300;
  o.seed = 8;
  o.backend.noise.readout_error = 0.1;  // measurement-only noise: gates stay fusable
  qutes::RunConfig off = o;
  off.backend.max_fused_qubits = 1;
  const auto fused = Executor(o).run(c);
  const auto unfused = Executor(off).run(c);
  EXPECT_GT(fused.fused_gates, 0u);
  EXPECT_EQ(fused.counts, unfused.counts);
}

TEST(FusionEngine, GateNoiseDisablesFusionOfNoisyGates) {
  QuantumCircuit c(3, 3);
  c.h(0).h(1).h(2).cx(0, 1).measure_all();
  qutes::RunConfig o;
  o.shots = 50;
  o.seed = 4;
  o.backend.noise.depolarizing_1q = 0.05;
  o.backend.noise.depolarizing_2q = 0.05;
  const auto result = Executor(o).run(c);
  // Every unitary is a noise insertion point, so nothing may fuse.
  EXPECT_EQ(result.fused_gates, 0u);
  EXPECT_EQ(result.fused_blocks, 0u);
}

TEST(FusionEngine, GroverLayersCoalesceIntoMultiWireBlocks) {
  // Regression: Grover's structure (an H/X wall on every wire, fenced by the
  // wide multi-controlled oracle) once degenerated into all-singleton blocks
  // ({"1": gates}) because each wire's run flushed as its own width-1 block.
  // Flush-time coalescing must pack those disjoint blocks into multi-wire
  // ones — and the packed plan must still be exact.
  const std::uint64_t marked[] = {(std::uint64_t{1} << 10) - 1};
  const QuantumCircuit c = algo::build_grover_circuit(10, marked, 3);
  const FusionPlan plan = build_fusion_plan(c.instructions(), FusionOptions{});
  std::size_t wide = 0, singleton = 0;
  for (const auto& [width, blocks] : plan.width_histogram) {
    (width >= 2 ? wide : singleton) += blocks;
  }
  EXPECT_GT(wide, 0u) << "Grover plan degenerated to singleton blocks";
  EXPECT_GT(wide, singleton);

  // The coalesced plan evolves to the same state as gate-at-a-time replay.
  QuantumCircuit unitary_part(c.num_qubits(), c.num_clbits());
  for (const Instruction& in : c.instructions()) {
    if (in.type != GateType::Measure) unitary_part.append(in);
  }
  const sim::StateVector reference = evolve_unfused(unitary_part);
  const sim::StateVector fused =
      evolve_fused(unitary_part, FusionOptions{}.max_fused_qubits);
  EXPECT_NEAR(fused.fidelity(reference), 1.0, 1e-9);
}

TEST(FusionEngine, CoalescingPacksDisjointSameLayerBlocks) {
  // Six wires, each carrying a 2-gate 1q run: without coalescing the planner
  // flushes six width-1 blocks; with it, the disjoint blocks pack first-fit
  // into max_fused_qubits-wide bins. Disjoint operators commute, so packing
  // is exact by construction — pin both the shape and the state.
  QuantumCircuit c(6, 0);
  for (std::size_t q = 0; q < 6; ++q) c.h(q).t(q);
  FusionOptions off;
  off.max_fused_qubits = 5;
  off.coalesce_blocks = false;
  const FusionPlan plain = build_fusion_plan(c.instructions(), off);
  FusionOptions on = off;
  on.coalesce_blocks = true;
  const FusionPlan packed = build_fusion_plan(c.instructions(), on);

  ASSERT_TRUE(plain.width_histogram.count(1));
  EXPECT_EQ(plain.width_histogram.at(1), 6u);
  std::size_t packed_blocks = 0;
  for (const auto& [width, blocks] : packed.width_histogram) {
    EXPECT_LE(width, on.max_fused_qubits);
    packed_blocks += blocks;
  }
  EXPECT_LT(packed_blocks, 6u);  // strictly fewer sweeps than unpacked
  EXPECT_TRUE(packed.width_histogram.count(5));

  const sim::StateVector reference = evolve_unfused(c);
  const sim::StateVector fused = evolve_fused(c, 5);
  EXPECT_NEAR(fused.fidelity(reference), 1.0, 1e-12);
}

TEST(FusionEngine, ApplyKqValidatesArguments) {
  sim::StateVector sv(3);
  const sim::MatrixN id2 = sim::MatrixN::identity(2);
  const std::size_t dup[2] = {1, 1};
  EXPECT_THROW(sv.apply_kq(id2, dup), InvalidArgument);
  const std::size_t out_of_range[2] = {0, 7};
  EXPECT_THROW(sv.apply_kq(id2, out_of_range), InvalidArgument);
  const std::size_t one[1] = {0};
  EXPECT_THROW(sv.apply_kq(id2, one), InvalidArgument);
}

}  // namespace
