// Unit tests for the bit-twiddling helpers every kernel relies on.
#include <gtest/gtest.h>

#include "qutes/common/bitops.hpp"

namespace {

using namespace qutes;

TEST(BitOps, DimOf) {
  EXPECT_EQ(dim_of(0), 1u);
  EXPECT_EQ(dim_of(1), 2u);
  EXPECT_EQ(dim_of(10), 1024u);
  EXPECT_EQ(dim_of(30), 1u << 30);
}

TEST(BitOps, TestSetClearFlip) {
  const std::uint64_t x = 0b1010;
  EXPECT_TRUE(test_bit(x, 1));
  EXPECT_FALSE(test_bit(x, 0));
  EXPECT_EQ(set_bit(x, 0), 0b1011u);
  EXPECT_EQ(clear_bit(x, 1), 0b1000u);
  EXPECT_EQ(flip_bit(x, 3), 0b0010u);
  EXPECT_EQ(flip_bit(x, 2), 0b1110u);
}

TEST(BitOps, InsertZeroBitAtLsb) {
  // Inserting at position 0 shifts everything left.
  EXPECT_EQ(insert_zero_bit(0b101, 0), 0b1010u);
}

TEST(BitOps, InsertZeroBitMiddle) {
  // 0b11 with a zero inserted at position 1 -> 0b101.
  EXPECT_EQ(insert_zero_bit(0b11, 1), 0b101u);
}

TEST(BitOps, InsertZeroBitEnumeratesPairs) {
  // For every i in [0, 2^{n-1}), insert_zero_bit(i, q) must produce exactly
  // the indices with bit q == 0, without repeats.
  const std::size_t n = 5;
  for (std::size_t q = 0; q < n; ++q) {
    std::vector<bool> seen(dim_of(n), false);
    for (std::uint64_t i = 0; i < dim_of(n - 1); ++i) {
      const std::uint64_t idx = insert_zero_bit(i, q);
      EXPECT_FALSE(test_bit(idx, q));
      EXPECT_LT(idx, dim_of(n));
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(BitOps, BitsFor) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 3u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

TEST(BitOps, ToBitstringMsbFirst) {
  EXPECT_EQ(to_bitstring(0b110, 3), "110");
  EXPECT_EQ(to_bitstring(1, 4), "0001");
  EXPECT_EQ(to_bitstring(0, 2), "00");
}

TEST(BitOps, FromBitstringRoundTrip) {
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(from_bitstring(to_bitstring(v, 6)), v);
  }
}

}  // namespace
