// PassManager pipeline tests: presets must agree with the legacy entry
// points they replaced, instrumentation must describe what actually ran,
// analysis state (final layout, fusion plan) must thread through the
// PropertySet, and the regressions this refactor fixed must stay fixed
// (no peephole cancellation across classical conditions, measurement clbit
// remapping under a non-restored routing layout).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

/// Fidelity between the final states of two unitary circuits, padding the
/// narrower one with idle qubits (ancillas end in |0>, so padding is exact).
double circuit_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  const std::size_t n = std::max(a.num_qubits(), b.num_qubits());
  QuantumCircuit wa(n), wb(n);
  std::vector<std::size_t> map_a(a.num_qubits()), map_b(b.num_qubits());
  for (std::size_t i = 0; i < a.num_qubits(); ++i) map_a[i] = i;
  for (std::size_t i = 0; i < b.num_qubits(); ++i) map_b[i] = i;
  wa.compose(a, map_a);
  wb.compose(b, map_b);
  Executor ex({.shots = 1, .seed = 3});
  const auto ta = ex.run_single(wa);
  const auto tb = ex.run_single(wb);
  return ta.state.fidelity(tb.state);
}

/// A representative mixed workload: entanglement, a 4-control MCX (forces
/// the V-chain + ancillas), phases, and a long-range interaction.
QuantumCircuit mixed_workload() {
  QuantumCircuit c(5);
  for (std::size_t q = 0; q < 5; ++q) c.ry(0.3 + 0.41 * static_cast<double>(q), q);
  c.h(0).cx(0, 4).cp(0.7, 1, 3);
  const std::size_t controls[4] = {0, 1, 2, 3};
  c.mcx(controls, 4);
  c.t(2).swap(1, 2).crz(0.9, 0, 2);
  return c;
}

TEST(PassManager, InstrumentsEveryPass) {
  PassManager pm;
  pm.emplace<DecomposeToBasis>();
  pm.emplace<FuseSingleQubitGates>();
  pm.emplace<Optimize>();
  PropertySet props;
  const QuantumCircuit lowered = pm.run(mixed_workload(), props);

  ASSERT_EQ(props.stats.size(), 3u);
  EXPECT_EQ(props.stats[0].name, "decompose-to-basis");
  EXPECT_EQ(props.stats[1].name, "fuse-1q");
  EXPECT_EQ(props.stats[2].name, "optimize");
  // Each pass's "after" is the next pass's "before", and the final "after"
  // describes the returned circuit.
  EXPECT_EQ(props.stats[0].size_after, props.stats[1].size_before);
  EXPECT_EQ(props.stats[1].size_after, props.stats[2].size_before);
  EXPECT_EQ(props.stats[2].size_after, lowered.gate_count());
  EXPECT_EQ(props.stats[2].depth_after, lowered.depth());
  for (const PassStats& s : props.stats) EXPECT_GE(s.wall_ms, 0.0);
  EXPECT_GE(props.total_wall_ms(), props.stats[0].wall_ms);

  const auto names = pm.pass_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "decompose-to-basis");

  // The --dump-passes table mentions every pass that ran.
  const std::string table = format_pass_table(props);
  for (const PassStats& s : props.stats)
    EXPECT_NE(table.find(s.name), std::string::npos) << table;
}

TEST(PassManager, PresetParsingRoundTrips) {
  for (const Preset preset :
       {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
    const auto parsed = parse_preset(preset_name(preset));
    ASSERT_TRUE(parsed.has_value()) << preset_name(preset);
    EXPECT_EQ(*parsed, preset);
  }
  EXPECT_EQ(parse_preset("o1"), Preset::O1);
  EXPECT_EQ(parse_preset("HARDWARE"), Preset::Hardware);
  EXPECT_FALSE(parse_preset("O3").has_value());
  EXPECT_FALSE(parse_preset("").has_value());
}

TEST(PassManager, O1PresetSubsumesLegacyTranspile) {
  // O1 = the legacy default transpile() pipeline (multicontrolled lowering +
  // peephole, spelled as passes here) plus commutation-aware reordering, so
  // it must stay equivalent and can only expose more peephole cancellations,
  // never fewer.
  const QuantumCircuit base = mixed_workload();
  PassManager legacy_pm;
  legacy_pm.emplace<DecomposeMulticontrolled>();
  legacy_pm.emplace<Optimize>();
  const QuantumCircuit legacy = legacy_pm.run(base);
  const QuantumCircuit preset = make_pipeline(Preset::O1).run(base);
  EXPECT_LE(preset.gate_count(), legacy.gate_count());
  EXPECT_NEAR(circuit_fidelity(preset, legacy), 1.0, 1e-9);
}

TEST(PassManager, EveryPresetPreservesSemantics) {
  const QuantumCircuit base = mixed_workload();
  for (const Preset preset :
       {Preset::O0, Preset::O1, Preset::Basis, Preset::Hardware}) {
    const QuantumCircuit lowered = make_pipeline(preset).run(base);
    EXPECT_NEAR(circuit_fidelity(base, lowered), 1.0, 1e-9)
        << "preset " << preset_name(preset);
  }
}

TEST(PassManager, BasisPresetEmitsOnlyBasisGates) {
  const QuantumCircuit lowered = make_pipeline(Preset::Basis).run(mixed_workload());
  for (const Instruction& in : lowered.instructions()) {
    const bool ok = in.type == GateType::U || in.type == GateType::CX ||
                    in.type == GateType::Measure || in.type == GateType::Reset ||
                    in.type == GateType::Barrier ||
                    in.type == GateType::GlobalPhase;
    EXPECT_TRUE(ok) << "non-basis gate survived: " << gate_name(in.type);
  }
}

TEST(PassManager, HardwarePresetRespectsLineCoupling) {
  PropertySet props;
  const QuantumCircuit lowered =
      make_pipeline(Preset::Hardware).run(mixed_workload(), props);
  for (const Instruction& in : lowered.instructions()) {
    if (in.type == GateType::Measure || in.type == GateType::Barrier) continue;
    ASSERT_LE(in.qubits.size(), 2u) << gate_name(in.type);
    if (in.qubits.size() == 2) {
      const auto lo = std::min(in.qubits[0], in.qubits[1]);
      const auto hi = std::max(in.qubits[0], in.qubits[1]);
      EXPECT_EQ(hi - lo, 1u) << gate_name(in.type) << " on non-adjacent qubits";
    }
  }
  EXPECT_EQ(props.coupling_map.topology, CouplingMap::Topology::Line);
  EXPECT_GT(props.swaps_inserted, 0u);
  // restore_layout: the final layout is the identity permutation.
  ASSERT_EQ(props.final_layout.size(), lowered.num_qubits());
  for (std::size_t q = 0; q < props.final_layout.size(); ++q)
    EXPECT_EQ(props.final_layout[q], q);
}

TEST(PassManager, FullCouplingMakesRouteNoOp) {
  QuantumCircuit c(4);
  c.h(0).cx(0, 3).cx(1, 3);
  PassManager pm;
  pm.emplace<Route>(CouplingMap::full());
  PropertySet props;
  const QuantumCircuit routed = pm.run(c, props);
  EXPECT_EQ(routed.gate_count(), c.gate_count());
  EXPECT_EQ(props.swaps_inserted, 0u);
}

TEST(PassManager, RouteThreadsNonIdentityFinalLayout) {
  // Long-range CX then measure everything: with restore_layout=false the
  // trailing un-permuting SWAPs are gone, so measurements must be remapped
  // through final_layout for clbit i to still read logical qubit i.
  QuantumCircuit c(3, 3);
  c.x(0).cx(0, 2);  // logical: q0=1, q2=1 -> expect "101" (clbit order c2 c1 c0)
  c.measure_all();

  PassManager pm;
  pm.emplace<Route>(CouplingMap::line(), /*restore_layout=*/false);
  PropertySet props;
  const QuantumCircuit routed = pm.run(c, props);

  ASSERT_EQ(props.final_layout.size(), 3u);
  EXPECT_GT(props.swaps_inserted, 0u);
  bool identity = true;
  for (std::size_t q = 0; q < 3; ++q)
    identity = identity && props.final_layout[q] == q;
  EXPECT_FALSE(identity) << "restore_layout=false should leave a permutation";

  // Semantics: the routed circuit produces the same classical outcome.
  Executor ex({.shots = 64, .seed = 11});
  const auto base_counts = ex.run(c).counts;
  const auto routed_counts = ex.run(routed).counts;
  EXPECT_EQ(base_counts, routed_counts);
  ASSERT_EQ(base_counts.size(), 1u);
  EXPECT_EQ(base_counts.begin()->first, "101");
}

TEST(PassManager, OptimizeNeverCancelsAcrossConditions) {
  // x(0) ... x(0) looks like a self-inverse pair, but the first is
  // classically conditioned — cancelling it would change the |c=0> branch.
  QuantumCircuit c(1, 1);
  c.h(0);
  c.measure(0, 0);
  c.x(0).c_if(0, 1);
  c.x(0);
  PassManager pm;
  pm.emplace<Optimize>();
  const QuantumCircuit optimized = pm.run(c);
  EXPECT_EQ(optimized.gate_count(), c.gate_count())
      << "peephole cancelled across a classical condition";

  // Sanity: semantics preserved under execution. The conditioned X maps
  // both measurement branches to |0>, the trailing X to |1> — so the final
  // readout is deterministically 1. (Cancelling the pair would instead
  // leave the c=0 branch reading 0.)
  QuantumCircuit checked = optimized;
  checked.measure(0, 0);
  Executor ex({.shots = 128, .seed = 5});
  const auto counts = ex.run(checked).counts;
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, "1");
  EXPECT_EQ(counts.begin()->second, 128u);
}

TEST(PassManager, DecomposePropagatesConditions) {
  // A conditioned CSWAP must lower to a sequence that is all conditioned on
  // the same classical bit — otherwise the c=0 branch executes garbage.
  QuantumCircuit c(3, 1);
  c.x(0).x(1);
  c.measure(0, 0);
  c.cswap(0, 1, 2).c_if(0, 1);
  c.measure(1, 0);

  const QuantumCircuit lowered = make_pipeline(Preset::O0).run(c);
  std::size_t conditioned = 0;
  for (const Instruction& in : lowered.instructions()) {
    if (in.condition.has_value()) {
      ++conditioned;
      EXPECT_EQ(in.condition->clbit, 0u);
      EXPECT_EQ(in.condition->value, 1);
    }
  }
  EXPECT_GT(conditioned, 1u) << "decomposition dropped the condition";

  // q0 measures 1, so the CSWAP fires and moves q1's excitation to q2:
  // the final measure of q1 must read 0.
  Executor ex({.shots = 32, .seed = 7});
  for (const auto& [bits, count] : ex.run(lowered).counts) {
    EXPECT_EQ(bits, "0") << "conditioned lowering changed semantics";
    EXPECT_EQ(count, 32u);
  }
}

TEST(PassManager, FuseGatesPublishesPlanWithoutMutating) {
  const QuantumCircuit base = make_pipeline(Preset::Basis).run(mixed_workload());
  PassManager pm;
  pm.emplace<FuseGates>();
  PropertySet props;
  const QuantumCircuit out = pm.run(base, props);
  EXPECT_EQ(out.gate_count(), base.gate_count());
  ASSERT_TRUE(props.fusion_plan.has_value());
  EXPECT_GT(props.fusion_plan->ops.size(), 0u);
}

TEST(PassManager, ExecutorConsumesPipeline) {
  QuantumCircuit c(3, 3);
  c.h(0).cx(0, 1).cx(1, 2);
  c.measure_all();

  qutes::RunConfig plain;
  plain.shots = 256;
  plain.seed = 21;
  const auto base = Executor(plain).run(c);
  EXPECT_TRUE(base.pass_stats.empty());

  const PassManager pipeline = make_pipeline(Preset::Hardware);
  qutes::RunConfig piped = plain;
  piped.pipeline.manager = &pipeline;
  const auto lowered = Executor(piped).run(c);

  EXPECT_FALSE(lowered.pass_stats.empty());
  EXPECT_EQ(lowered.pass_stats.size(), pipeline.size());
  // GHZ statistics survive the full hardware pipeline bit-for-bit: the
  // lowered circuit has identical outcome probabilities and the sampler is
  // seed-deterministic.
  EXPECT_EQ(base.counts, lowered.counts);
}

TEST(PassManager, InstructionTargetThrowsOnEmptyOperands) {
  Instruction barrier{GateType::Barrier, {}, {}, {}, {}, {}};
  EXPECT_THROW((void)barrier.target(), CircuitError);
  Instruction x{GateType::X, {2}, {}, {}, {}, {}};
  EXPECT_EQ(x.target(), 2u);
}

}  // namespace
