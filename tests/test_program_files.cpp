// Integration tests over the shipped .qut program files — the same files
// the CLI tests execute, here loaded through run_file() with behavioural
// assertions on their output (the CLI tests only assert exit codes).
#include <gtest/gtest.h>

#include <fstream>

#include "qutes/lang/compiler.hpp"

#ifndef QUTES_PROGRAMS_DIR
#error "QUTES_PROGRAMS_DIR must point at examples/programs"
#endif

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string path_of(const char* name) {
  return std::string(QUTES_PROGRAMS_DIR) + "/" + name;
}

RunResult run_program(const char* name, std::uint64_t seed = 9) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_file(path_of(name), options);
}

TEST(ProgramFiles, AllProgramsParseAndRun) {
  const char* programs[] = {
      "quickstart.qut", "grover.qut",      "deutsch_jozsa.qut",
      "entanglement.qut", "cyclic_shift.qut", "database.qut",
      "stdlib_demo.qut",  "debugging.qut",  "ghz.qut", "randomness.qut",
  };
  for (const char* name : programs) {
    EXPECT_NO_THROW((void)run_program(name)) << name;
  }
}

TEST(ProgramFiles, QuickstartIsConsistentOnEverySeed) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RunResult result = run_program("quickstart.qut", seed);
    EXPECT_NE(result.output.find("arithmetic consistent"), std::string::npos)
        << "seed " << seed;
  }
}

TEST(ProgramFiles, GroverFindsThePattern) {
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RunResult result = run_program("grover.qut", seed);
    if (result.output.find("pattern found") != std::string::npos) ++found;
  }
  EXPECT_GE(found, 7);
}

TEST(ProgramFiles, DeutschJozsaSaysBalanced) {
  EXPECT_EQ(run_program("deutsch_jozsa.qut").output, "balanced\n");
}

TEST(ProgramFiles, EntanglementEndpointsAgreeOnEverySeed) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    EXPECT_EQ(run_program("entanglement.qut", seed).output,
              "endpoints correlated\n")
        << "seed " << seed;
  }
}

TEST(ProgramFiles, CyclicShiftValues) {
  EXPECT_EQ(run_program("cyclic_shift.qut").output, "8\n4\n");
}

TEST(ProgramFiles, DatabaseAggregates) {
  EXPECT_EQ(run_program("database.qut").output, "3\n30\n5\n-1\n");
}

TEST(ProgramFiles, GhzAlwaysAgrees) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(run_program("ghz.qut", seed).output, "true\n") << "seed " << seed;
  }
}

TEST(ProgramFiles, StdlibDemoDeterministicLines) {
  const RunResult result = run_program("stdlib_demo.qut");
  EXPECT_NE(result.output.find("256\n"), std::string::npos);
  EXPECT_NE(result.output.find("15\n"), std::string::npos);
  // Teleported |1> arrives intact: last line is true.
  EXPECT_EQ(result.output.substr(result.output.size() - 5), "true\n");
}

TEST(ProgramFiles, DebuggingProgramShowsAmplitudes) {
  const RunResult result = run_program("debugging.qut");
  EXPECT_NE(result.output.find("0.5\n0.5\n"), std::string::npos);
  EXPECT_NE(result.output.find("|"), std::string::npos);  // ket dump
}

TEST(ProgramFiles, RandomnessStaysInRange) {
  const RunResult result = run_program("randomness.qut", 5);
  // Second line is qrandom(6): an integer in [0, 64).
  std::istringstream lines(result.output);
  std::string coin, sample;
  std::getline(lines, coin);
  std::getline(lines, sample);
  EXPECT_TRUE(coin == "true" || coin == "false");
  const int v = std::stoi(sample);
  EXPECT_GE(v, 0);
  EXPECT_LT(v, 64);
}

TEST(ProgramFiles, MissingFileErrors) {
  EXPECT_THROW((void)run_program("no_such_program.qut"), Error);
}

}  // namespace
