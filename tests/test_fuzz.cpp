// Property/fuzz suites: randomized circuits pushed through every
// transformation pipeline must preserve semantics; malformed inputs must
// fail with LangError/CircuitError, never crash or corrupt state.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/routing.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

/// Deterministic pseudo-random circuit over `n` qubits.
QuantumCircuit random_circuit(std::size_t n, std::size_t gates, std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit c(n);
  for (std::size_t g = 0; g < gates; ++g) {
    const std::size_t q = rng.below(n);
    switch (rng.below(10)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.t(q); break;
      case 3: c.sdg(q); break;
      case 4: c.rx(rng.uniform() * 6.28, q); break;
      case 5: c.ry(rng.uniform() * 6.28, q); break;
      case 6: c.p(rng.uniform() * 6.28, q); break;
      case 7: {
        const std::size_t r = (q + 1 + rng.below(n - 1)) % n;
        c.cx(q, r);
        break;
      }
      case 8: {
        const std::size_t r = (q + 1 + rng.below(n - 1)) % n;
        c.cp(rng.uniform() * 3.14, q, r);
        break;
      }
      default: {
        const std::size_t r = (q + 1 + rng.below(n - 1)) % n;
        c.swap(q, r);
        break;
      }
    }
  }
  return c;
}

double final_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  Executor ex({.shots = 1, .seed = 17, .noise = {}});
  return ex.run_single(a).state.fidelity(ex.run_single(b).state);
}

class CircuitFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CircuitFuzz, QasmRoundTripPreservesState) {
  const QuantumCircuit c = random_circuit(4, 40, GetParam());
  const QuantumCircuit back = qasm::import_circuit(qasm::export_circuit(c));
  EXPECT_NEAR(final_fidelity(c, back), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, OptimizerPreservesState) {
  const QuantumCircuit c = random_circuit(4, 60, GetParam() + 1000);
  EXPECT_NEAR(final_fidelity(c, optimize(c)), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, BasisLoweringPreservesState) {
  const QuantumCircuit c = random_circuit(4, 40, GetParam() + 2000);
  const QuantumCircuit basis = decompose_to_basis(c);
  for (const Instruction& in : basis.instructions()) {
    ASSERT_TRUE(in.type == GateType::U || in.type == GateType::CX);
  }
  EXPECT_NEAR(final_fidelity(c, basis), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, FusionPreservesState) {
  const QuantumCircuit c = random_circuit(4, 60, GetParam() + 3000);
  EXPECT_NEAR(final_fidelity(c, fuse_single_qubit_gates(c)), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, RoutingPreservesState) {
  const QuantumCircuit c = random_circuit(5, 30, GetParam() + 4000);
  const RoutingResult routed = route_linear(c);
  EXPECT_NEAR(final_fidelity(c, routed.circuit), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, FullPipelinePreservesState) {
  const QuantumCircuit c = random_circuit(4, 40, GetParam() + 5000);
  const QuantumCircuit lowered = decompose_to_basis(c);
  const QuantumCircuit fused = fuse_single_qubit_gates(lowered);
  const QuantumCircuit opt = optimize(fused);
  const RoutingResult routed = route_linear(opt);
  EXPECT_NEAR(final_fidelity(c, routed.circuit), 1.0, 1e-8);
}

TEST_P(CircuitFuzz, NormAlwaysPreserved) {
  const QuantumCircuit c = random_circuit(5, 80, GetParam() + 6000);
  Executor ex({.shots = 1, .seed = 3, .noise = {}});
  EXPECT_NEAR(ex.run_single(c).state.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitFuzz, ::testing::Range<std::uint64_t>(1, 13));

// ---- front-end fuzz -----------------------------------------------------------------

TEST(FrontEndFuzz, GarbageNeverCrashes) {
  const char* cases[] = {
      ";;;;",
      "int",
      "int x",
      "int x = ",
      "((((((((",
      "}{",
      "\"unterminated",
      "/* unterminated",
      "5qq",
      "|->|",
      "quint<> x;",
      "if while else",
      "foreach foreach in in",
      "print print;",
      "x = = 3;",
      "int 3 = x;",
      "\x01\x02\x03",
      "a $ b;",
      "not;",
      "qubit q = |2>;",
  };
  for (const char* source : cases) {
    EXPECT_THROW((void)lang::run_source(source), LangError) << source;
  }
}

TEST(FrontEndFuzz, RandomTokenSoupNeverCrashes) {
  // Assemble random programs from valid fragments; each either runs or
  // raises LangError — anything else (crash, non-Lang exception) fails.
  static const char* fragments[] = {
      "int x = 1;",    "x += 2;",         "qubit q = |+>;", "hadamard q;",
      "print x;",      "if (x > 0) { }",  "while (false) { }",
      "not q;",        "bool b = q;",     "quint<3> v = 5q;",
      "v <<= 1;",      "print v;",        "{ int y = 2; }",
      "int z = x * 3;", "print \"s\";",   "barrier;",
      "x = x - 1;",    "foreach i in [1, 2] { print i; }",
  };
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    std::string source;
    const std::size_t parts = 1 + rng.below(10);
    for (std::size_t p = 0; p < parts; ++p) {
      source += fragments[rng.below(std::size(fragments))];
      source += "\n";
    }
    try {
      (void)lang::run_source(source, {.seed = trial + 1u, .echo = nullptr,
                                      .trace = nullptr, .include_stdlib = true});
    } catch (const LangError&) {
      // acceptable: e.g. duplicate declarations from repeated fragments
    }
  }
  SUCCEED();
}

}  // namespace
