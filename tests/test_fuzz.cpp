// Property/fuzz suites: randomized circuits pushed through every
// transformation pipeline must preserve semantics; malformed inputs must
// fail with LangError/CircuitError, never crash or corrupt state.
//
// Circuits come from the shared qutes::testing generators (the private
// random_circuit copy this file used to carry is gone), and states are
// compared with the differential comparator, which tolerates global phase
// and compilation ancillas.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/circuit/routing.hpp"  // fuse_single_qubit_gates (not deprecated)
#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/testing/differential.hpp"
#include "qutes/testing/generators.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;
namespace qt = qutes::testing;

QuantumCircuit fuzz_circuit(std::size_t n, std::size_t gates, std::uint64_t seed,
                            bool allow_wide = true) {
  qt::CircuitGenOptions options;
  options.num_qubits = n;
  options.gates = gates;
  options.allow_wide = allow_wide;
  return qt::random_circuit(seed, options);
}

/// `after` may run on more qubits than `before` (ancilla-lowering passes);
/// equivalence is up to global phase with no weight outside the original
/// register.
void expect_equiv(const QuantumCircuit& before, const QuantumCircuit& after) {
  Executor ex({.shots = 1, .seed = 17});
  const auto a = ex.run_single(before).state;
  const auto b = ex.run_single(after).state;
  const auto cmp =
      qt::compare_states_up_to_global_phase(a.amplitudes(), b.amplitudes(), 1e-8);
  EXPECT_TRUE(cmp.equivalent) << cmp.detail;
}

class CircuitFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CircuitFuzz, QasmRoundTripPreservesState) {
  const QuantumCircuit c = fuzz_circuit(4, 40, GetParam());
  const QuantumCircuit back = qasm::import_circuit(qasm::export_circuit(c));
  expect_equiv(c, back);
}

TEST_P(CircuitFuzz, OptimizerPreservesState) {
  const QuantumCircuit c = fuzz_circuit(4, 60, GetParam() + 1000);
  expect_equiv(c, optimize(c));
}

TEST_P(CircuitFuzz, BasisLoweringPreservesState) {
  const QuantumCircuit c = fuzz_circuit(4, 40, GetParam() + 2000);
  const QuantumCircuit basis = decompose_to_basis(c);
  for (const Instruction& in : basis.instructions()) {
    ASSERT_TRUE(in.type == GateType::U || in.type == GateType::CX ||
                in.type == GateType::Barrier || in.type == GateType::GlobalPhase)
        << gate_name(in.type);
  }
  expect_equiv(c, basis);
}

TEST_P(CircuitFuzz, FusionPreservesState) {
  const QuantumCircuit c = fuzz_circuit(4, 60, GetParam() + 3000);
  expect_equiv(c, fuse_single_qubit_gates(c));
}

TEST_P(CircuitFuzz, RoutingPreservesState) {
  // Route wants at-most-2-qubit gates, so no CCX/MCX here.
  const QuantumCircuit c = fuzz_circuit(5, 30, GetParam() + 4000, /*allow_wide=*/false);
  PassManager router;
  router.emplace<Route>();
  expect_equiv(c, router.run(c));
}

TEST_P(CircuitFuzz, FullPipelinePreservesState) {
  const QuantumCircuit c = fuzz_circuit(4, 40, GetParam() + 5000);
  const QuantumCircuit lowered = decompose_to_basis(c);
  const QuantumCircuit fused = fuse_single_qubit_gates(lowered);
  const QuantumCircuit opt = optimize(fused);
  PassManager router;
  router.emplace<Route>();
  expect_equiv(c, router.run(opt));
}

TEST_P(CircuitFuzz, NormAlwaysPreserved) {
  const QuantumCircuit c = fuzz_circuit(5, 80, GetParam() + 6000);
  Executor ex({.shots = 1, .seed = 3});
  EXPECT_NEAR(ex.run_single(c).state.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitFuzz, ::testing::Range<std::uint64_t>(1, 13));

// ---- front-end fuzz -----------------------------------------------------------------

TEST(FrontEndFuzz, GarbageNeverCrashes) {
  const char* cases[] = {
      ";;;;",
      "int",
      "int x",
      "int x = ",
      "((((((((",
      "}{",
      "\"unterminated",
      "/* unterminated",
      "5qq",
      "|->|",
      "quint<> x;",
      "if while else",
      "foreach foreach in in",
      "print print;",
      "x = = 3;",
      "int 3 = x;",
      "\x01\x02\x03",
      "a $ b;",
      "not;",
      "qubit q = |2>;",
      "int x = 99999999999999999999999999;",
  };
  for (const char* source : cases) {
    EXPECT_THROW((void)lang::run_source(source), LangError) << source;
  }
}

TEST(FrontEndFuzz, RandomTokenSoupNeverCrashes) {
  // Assemble random programs from valid fragments; each either runs or
  // raises LangError — anything else (crash, non-Lang exception) fails.
  static const char* fragments[] = {
      "int x = 1;",    "x += 2;",         "qubit q = |+>;", "hadamard q;",
      "print x;",      "if (x > 0) { }",  "while (false) { }",
      "not q;",        "bool b = q;",     "quint<3> v = 5q;",
      "v <<= 1;",      "print v;",        "{ int y = 2; }",
      "int z = x * 3;", "print \"s\";",   "barrier;",
      "x = x - 1;",    "foreach i in [1, 2] { print i; }",
  };
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    std::string source;
    const std::size_t parts = 1 + rng.below(10);
    for (std::size_t p = 0; p < parts; ++p) {
      source += fragments[rng.below(std::size(fragments))];
      source += "\n";
    }
    try {
      (void)lang::run_source(source, {.seed = trial + 1u, .include_stdlib = true});
    } catch (const LangError&) {
      // acceptable: e.g. duplicate declarations from repeated fragments
    }
  }
  SUCCEED();
}

TEST(FrontEndFuzz, MutatedGeneratedProgramsNeverCrash) {
  // The deep mutation sweep lives in test_dsl_robustness; this is a quick
  // smoke pass over the same shared generator + mutator.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::string source =
        qt::mutate_source(qt::random_qutes_program(seed), seed + 7);
    try {
      (void)lang::run_source(source, {.seed = 5, .include_stdlib = false});
    } catch (const LangError&) {
      // rejected cleanly
    }
  }
  SUCCEED();
}

}  // namespace
