// Lexer tests: every token class, the quantum literal forms (5q, "01"q,
// kets), comments, and error reporting with locations.
#include <gtest/gtest.h>

#include "qutes/lang/lexer.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::vector<TokenType> types_of(const std::string& source) {
  std::vector<TokenType> types;
  for (const Token& t : tokenize(source)) types.push_back(t.type);
  return types;
}

TEST(Lexer, EmptyInputIsJustEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::Eof);
}

TEST(Lexer, IntAndFloatLiterals) {
  const auto tokens = tokenize("42 3.25 0 0.5");
  EXPECT_EQ(tokens[0].type, TokenType::IntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::FloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.25);
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.5);
}

TEST(Lexer, QuantumIntLiteral) {
  const auto tokens = tokenize("5q 0q 123q");
  EXPECT_EQ(tokens[0].type, TokenType::QuantumIntLit);
  EXPECT_EQ(tokens[0].int_value, 5);
  EXPECT_EQ(tokens[1].type, TokenType::QuantumIntLit);
  EXPECT_EQ(tokens[2].int_value, 123);
}

TEST(Lexer, QSuffixNeedsAdjacency) {
  // `5 q` is an int then an identifier, not a quantum literal.
  const auto tokens = tokenize("5 q");
  EXPECT_EQ(tokens[0].type, TokenType::IntLit);
  EXPECT_EQ(tokens[1].type, TokenType::Identifier);
  // `5qx` is an int followed by identifier qx (q not a suffix).
  const auto tokens2 = tokenize("5qx");
  EXPECT_EQ(tokens2[0].type, TokenType::IntLit);
  EXPECT_EQ(tokens2[1].type, TokenType::Identifier);
  EXPECT_EQ(tokens2[1].text, "qx");
}

TEST(Lexer, StringLiterals) {
  const auto tokens = tokenize(R"("hello" "a\nb" "say \"hi\"")");
  EXPECT_EQ(tokens[0].type, TokenType::StringLit);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\nb");
  EXPECT_EQ(tokens[2].text, "say \"hi\"");
}

TEST(Lexer, QuantumStringLiteral) {
  const auto tokens = tokenize(R"("0101"q)");
  EXPECT_EQ(tokens[0].type, TokenType::QuantumStringLit);
  EXPECT_EQ(tokens[0].text, "0101");
}

TEST(Lexer, QuantumStringMustBeBits) {
  EXPECT_THROW(tokenize(R"("01a1"q)"), LangError);
}

TEST(Lexer, KetLiterals) {
  const auto types = types_of("|0> |1> |+> |->");
  EXPECT_EQ(types[0], TokenType::KetZero);
  EXPECT_EQ(types[1], TokenType::KetOne);
  EXPECT_EQ(types[2], TokenType::KetPlus);
  EXPECT_EQ(types[3], TokenType::KetMinus);
}

TEST(Lexer, Keywords) {
  const auto types = types_of(
      "bool int float string qubit quint qustring void true false if else "
      "while foreach in return print barrier not pauliy pauliz hadamard "
      "phase sgate tgate measure reset");
  const TokenType expect[] = {
      TokenType::KwBool, TokenType::KwInt, TokenType::KwFloat, TokenType::KwString,
      TokenType::KwQubit, TokenType::KwQuint, TokenType::KwQustring, TokenType::KwVoid,
      TokenType::KwTrue, TokenType::KwFalse, TokenType::KwIf, TokenType::KwElse,
      TokenType::KwWhile, TokenType::KwForeach, TokenType::KwIn, TokenType::KwReturn,
      TokenType::KwPrint, TokenType::KwBarrier, TokenType::KwNot, TokenType::KwPauliY,
      TokenType::KwPauliZ, TokenType::KwHadamard, TokenType::KwPhase,
      TokenType::KwSGate, TokenType::KwTGate, TokenType::KwMeasure, TokenType::KwReset};
  for (std::size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(types[i], expect[i]) << i;
  }
}

TEST(Lexer, IdentifiersVsKeywords) {
  const auto tokens = tokenize("iffy boolean notq _x x_1");
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::Identifier) << tokens[i].text;
  }
}

TEST(Lexer, OperatorsIncludingCompound) {
  const auto types = types_of("= += -= *= /= %= <<= >>= + - * / % << >> "
                              "== != < <= > >= && || ! ~");
  const TokenType expect[] = {
      TokenType::Assign, TokenType::PlusAssign, TokenType::MinusAssign,
      TokenType::StarAssign, TokenType::SlashAssign, TokenType::PercentAssign,
      TokenType::ShlAssign, TokenType::ShrAssign, TokenType::Plus, TokenType::Minus,
      TokenType::Star, TokenType::Slash, TokenType::Percent, TokenType::Shl,
      TokenType::Shr, TokenType::EqEq, TokenType::NotEq, TokenType::Lt,
      TokenType::LtEq, TokenType::Gt, TokenType::GtEq, TokenType::AndAnd,
      TokenType::OrOr, TokenType::Bang, TokenType::Tilde};
  for (std::size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(types[i], expect[i]) << i;
  }
}

TEST(Lexer, Punctuation) {
  const auto types = types_of("( ) { } [ ] , ;");
  const TokenType expect[] = {TokenType::LParen, TokenType::RParen, TokenType::LBrace,
                              TokenType::RBrace, TokenType::LBracket,
                              TokenType::RBracket, TokenType::Comma,
                              TokenType::Semicolon};
  for (std::size_t i = 0; i < std::size(expect); ++i) EXPECT_EQ(types[i], expect[i]);
}

TEST(Lexer, LineAndBlockComments) {
  const auto tokens = tokenize("1 // comment\n2 /* multi\nline */ 3");
  ASSERT_EQ(tokens.size(), 4u);  // 3 ints + eof
  EXPECT_EQ(tokens[2].int_value, 3);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("/* oops"), LangError);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("\"abc"), LangError);
}

TEST(Lexer, LocationsTracked) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(Lexer, SingleAmpersandAndPipeRejected) {
  EXPECT_THROW(tokenize("a & b"), LangError);
  EXPECT_THROW(tokenize("a | b"), LangError);
}

TEST(Lexer, MalformedKetRejected) {
  EXPECT_THROW(tokenize("|2>"), LangError);
}

TEST(Lexer, ShiftVsComparisonDisambiguation) {
  const auto types = types_of("a << b < c <= d <<= e");
  EXPECT_EQ(types[1], TokenType::Shl);
  EXPECT_EQ(types[3], TokenType::Lt);
  EXPECT_EQ(types[5], TokenType::LtEq);
  EXPECT_EQ(types[7], TokenType::ShlAssign);
}

}  // namespace
