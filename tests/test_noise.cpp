// Tests for the trajectory noise channels: statistical behaviour over many
// trajectories and exact behaviour at p = 0 / p = 1 boundaries.
#include <gtest/gtest.h>

#include "qutes/common/error.hpp"
#include "qutes/sim/noise.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;

TEST(Noise, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  StateVector sv(1);
  sv.apply_1q(gates::H(), 0);
  StateVector ref = sv;
  apply_depolarizing(sv, 0, 0.0, rng);
  apply_bit_flip(sv, 0, 0.0, rng);
  apply_phase_flip(sv, 0, 0.0, rng);
  apply_amplitude_damping(sv, 0, 0.0, rng);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-12);
}

TEST(Noise, BitFlipCertainFlips) {
  Rng rng(2);
  StateVector sv(1);
  apply_bit_flip(sv, 0, 1.0, rng);
  EXPECT_NEAR(sv.probability_one(0), 1.0, 1e-12);
}

TEST(Noise, BitFlipStatistics) {
  Rng rng(3);
  const double p = 0.3;
  int flips = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    apply_bit_flip(sv, 0, p, rng);
    if (sv.probability_one(0) > 0.5) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / trials, p, 0.02);
}

TEST(Noise, PhaseFlipInvisibleOnBasisStates) {
  Rng rng(4);
  StateVector sv(1);
  StateVector ref = sv;
  apply_phase_flip(sv, 0, 1.0, rng);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-12);  // Z|0> = |0>
}

TEST(Noise, PhaseFlipDestroysPlusState) {
  Rng rng(5);
  StateVector sv(1);
  sv.apply_1q(gates::H(), 0);
  StateVector plus = sv;
  apply_phase_flip(sv, 0, 1.0, rng);
  EXPECT_NEAR(sv.fidelity(plus), 0.0, 1e-12);  // Z|+> = |->
}

TEST(Noise, DepolarizingStatistics) {
  // With p = 1 each of X/Y/Z fires with prob 1/3; on |0> the excited
  // population is 2/3 (X and Y excite, Z does not).
  Rng rng(6);
  const int trials = 30000;
  int excited = 0;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    apply_depolarizing(sv, 0, 1.0, rng);
    if (sv.probability_one(0) > 0.5) ++excited;
  }
  EXPECT_NEAR(static_cast<double>(excited) / trials, 2.0 / 3.0, 0.02);
}

TEST(Noise, AmplitudeDampingFullyDecays) {
  Rng rng(7);
  StateVector sv(1);
  sv.apply_1q(gates::X(), 0);  // |1>
  apply_amplitude_damping(sv, 0, 1.0, rng);
  EXPECT_NEAR(sv.probability_one(0), 0.0, 1e-9);
}

TEST(Noise, AmplitudeDampingAverageExcitation) {
  // |1> damped with gamma: average excited population over trajectories is
  // 1 - gamma.
  Rng rng(8);
  const double gamma = 0.4;
  const int trials = 20000;
  double excited = 0.0;
  for (int t = 0; t < trials; ++t) {
    StateVector sv(1);
    sv.apply_1q(gates::X(), 0);
    apply_amplitude_damping(sv, 0, gamma, rng);
    excited += sv.probability_one(0);
  }
  EXPECT_NEAR(excited / trials, 1.0 - gamma, 0.02);
}

TEST(Noise, ReadoutErrorStatistics) {
  Rng rng(9);
  const double p = 0.2;
  int flipped = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (apply_readout_error(0, p, rng) == 1) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / trials, p, 0.02);
  EXPECT_EQ(apply_readout_error(1, 0.0, rng), 1);
  EXPECT_EQ(apply_readout_error(1, 1.0, rng), 0);
}

TEST(Noise, ProbabilityValidation) {
  Rng rng(10);
  StateVector sv(1);
  EXPECT_THROW(apply_bit_flip(sv, 0, -0.1, rng), InvalidArgument);
  EXPECT_THROW(apply_depolarizing(sv, 0, 1.5, rng), InvalidArgument);
  EXPECT_THROW(apply_amplitude_damping(sv, 0, 2.0, rng), InvalidArgument);
  EXPECT_THROW((void)apply_readout_error(0, -1.0, rng), InvalidArgument);
}

TEST(NoiseModel, EnabledFlag) {
  NoiseModel none;
  EXPECT_FALSE(none.enabled());
  NoiseModel some;
  some.depolarizing_1q = 0.01;
  EXPECT_TRUE(some.enabled());
}

}  // namespace
