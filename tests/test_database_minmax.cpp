// Quantum database operations (paper §6 future work): less-than comparator
// oracle, equality/filter search over loaded tables, and Durr-Hoyer
// minimum/maximum finding.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/algorithms/database.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// ---- less-than oracle --------------------------------------------------------------

class LessThanOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LessThanOracle, MarksExactlyTheStatesBelow) {
  const std::uint64_t bound = GetParam();
  const std::size_t n = 4;
  circ::QuantumCircuit c(n);
  for (std::size_t q : iota(n)) c.h(q);
  append_less_than_oracle(c, iota(n), bound);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  for (std::uint64_t x = 0; x < 16; ++x) {
    const double expected = (x < bound ? -1.0 : 1.0) / 4.0;
    EXPECT_NEAR(traj.state.amplitude(x).real(), expected, 1e-9)
        << "bound=" << bound << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, LessThanOracle,
                         ::testing::Values(0u, 1u, 2u, 5u, 7u, 8u, 11u, 15u));

TEST(LessThanOracle, Validation) {
  circ::QuantumCircuit c(3);
  EXPECT_THROW(append_less_than_oracle(c, iota(3), 8), Error);
  const std::vector<std::size_t> none;
  EXPECT_THROW(append_less_than_oracle(c, none, 1), Error);
}

TEST(LessThanOracle, SelfInverse) {
  circ::QuantumCircuit c(4);
  for (std::size_t q : iota(4)) c.ry(0.2 + 0.1 * static_cast<double>(q), q);
  circ::QuantumCircuit ref = c;
  append_less_than_oracle(c, iota(4), 11);
  append_less_than_oracle(c, iota(4), 11);
  circ::Executor ex({.shots = 1, .seed = 1});
  EXPECT_NEAR(ex.run_single(c).state.fidelity(ex.run_single(ref).state), 1.0, 1e-9);
}

// ---- database equality search --------------------------------------------------------

TEST(Database, RegisterSizing) {
  const QuantumDatabase db({3, 7, 1, 12, 5});
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.index_qubits(), 3u);  // 5 entries -> 3 bits
  EXPECT_EQ(db.value_qubits(), 4u);  // widest entry 12 -> 4 bits
  EXPECT_THROW(QuantumDatabase({}), Error);
}

TEST(Database, EqualitySearchFindsUniqueEntry) {
  const QuantumDatabase db({9, 4, 13, 2, 7, 11, 0, 6});
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const GroverResult result = db.run_equal(13, seed);
    EXPECT_GT(result.success_probability, 0.9);
    if (result.hit) {
      EXPECT_EQ(result.outcome, 2u);
      ++hits;
    }
  }
  EXPECT_GE(hits, 8);
}

TEST(Database, EqualitySearchMultipleMatches) {
  const QuantumDatabase db({5, 3, 5, 1, 5, 7, 5, 2});  // four 5s out of 8
  const GroverResult result = db.run_equal(5, 3);
  // M/N = 1/2: optimum is 0 iterations; uniform measurement succeeds half
  // the time and success_probability reports exactly that.
  EXPECT_NEAR(result.success_probability, 0.5, 1e-9);
  EXPECT_EQ(result.oracle_calls, 0u);
}

TEST(Database, AbsentKeyNeverVerifies) {
  const QuantumDatabase db({1, 2, 3, 4});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const GroverResult result = db.run_equal(7, seed);
    EXPECT_FALSE(result.hit);
    EXPECT_NEAR(result.success_probability, 0.0, 1e-9);
  }
}

TEST(Database, PaddingIndicesCannotFalsePositive) {
  // 5 entries padded to 8 index states; the key occurs once.
  const QuantumDatabase db({2, 9, 4, 9, 9});
  // Key 4 at index 2 only; padding loads ~4 which never equals 4.
  const GroverResult result = db.run_equal(4, 11);
  EXPECT_GT(result.success_probability, 0.6);
  if (result.hit) {
    EXPECT_EQ(result.outcome, 2u);
  }
}

TEST(Database, LessThanSearchAmplifiesSmallEntries) {
  const QuantumDatabase db({12, 3, 14, 9, 13, 15, 11, 10});  // 3 and 9 below 10
  const circ::QuantumCircuit circuit = db.build_less_than_circuit(
      10, optimal_grover_iterations(8, 2));
  circ::Executor ex({.shots = 1, .seed = 4});
  // Strip measurement, inspect index distribution.
  circ::QuantumCircuit unm;
  unm.add_register("idx", db.index_qubits());
  unm.add_register("val", db.value_qubits());
  for (const auto& in : circuit.instructions()) {
    if (in.type != circ::GateType::Measure) unm.append(in);
  }
  const auto traj = ex.run_single(unm);
  double p_below = 0.0;
  for (std::uint64_t basis = 0; basis < traj.state.dim(); ++basis) {
    const std::uint64_t idx = basis & 7u;
    if (idx < db.size() && db.values()[idx] < 10) {
      p_below += std::norm(traj.state.amplitude(basis));
    }
  }
  EXPECT_GT(p_below, 0.9);
}

// ---- Durr-Hoyer minimum / maximum ------------------------------------------------------

class MinimumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimumSweep, FindsTheTrueMinimum) {
  // Reproducible pseudo-random tables of varying size.
  Rng rng(GetParam());
  const std::size_t size = 4 + rng.below(12);
  std::vector<std::uint64_t> values(size);
  for (auto& v : values) v = rng.below(30);
  const ExtremumResult result = find_minimum(values, GetParam() * 31 + 5);
  EXPECT_TRUE(result.exact) << "seed " << GetParam();
  EXPECT_GT(result.grover_rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimumSweep, ::testing::Range<std::uint64_t>(1, 9));

TEST(Minimum, SingletonAndUniform) {
  const std::vector<std::uint64_t> one = {7};
  EXPECT_EQ(find_minimum(one).value, 7u);
  const std::vector<std::uint64_t> flat = {4, 4, 4, 4};
  EXPECT_EQ(find_minimum(flat).value, 4u);
}

TEST(Minimum, ZeroShortCircuits) {
  const std::vector<std::uint64_t> values = {5, 0, 9, 3};
  const ExtremumResult result = find_minimum(values, 2);
  EXPECT_EQ(result.value, 0u);
  EXPECT_TRUE(result.exact);
}

TEST(Maximum, FindsTheTrueMaximum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed + 100);
    std::vector<std::uint64_t> values(10);
    for (auto& v : values) v = rng.below(25);
    const ExtremumResult result = find_maximum(values, seed);
    EXPECT_TRUE(result.exact) << "seed " << seed;
  }
}

TEST(Minimum, OracleBudgetIsSublinearInTableSize) {
  // The oracle-call budget follows the Durr-Hoyer O(sqrt(N)) bound — far
  // below the classical N-1 comparisons for large N.
  Rng rng(5);
  std::vector<std::uint64_t> values(16);
  for (auto& v : values) v = rng.below(60);
  const ExtremumResult result = find_minimum(values, 77);
  EXPECT_TRUE(result.exact);
  EXPECT_LT(result.oracle_calls, 23u * 4u + 11u);  // 22.5 sqrt(16) + slack
}

TEST(Extremum, EmptyTableRejected) {
  const std::vector<std::uint64_t> none;
  EXPECT_THROW((void)find_minimum(none), Error);
}

}  // namespace
