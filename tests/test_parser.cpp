// Parser tests: statement forms, declaration syntax (incl. quint<N> and
// arrays), precedence, and syntax-error reporting.
#include <gtest/gtest.h>

#include "qutes/lang/parser.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

template <typename T>
T* as(Stmt* stmt) {
  T* cast = dynamic_cast<T*>(stmt);
  EXPECT_NE(cast, nullptr);
  return cast;
}

template <typename T>
T* as(Expr* expr) {
  T* cast = dynamic_cast<T*>(expr);
  EXPECT_NE(cast, nullptr);
  return cast;
}

TEST(Parser, EmptyProgram) {
  EXPECT_TRUE(parse("").statements.empty());
}

TEST(Parser, VarDeclarations) {
  const Program p = parse("int x = 3; bool b; float f = 1.5; string s = \"hi\";");
  ASSERT_EQ(p.statements.size(), 4u);
  auto* x = as<VarDeclStmt>(p.statements[0].get());
  EXPECT_EQ(x->type.kind, TypeKind::Int);
  EXPECT_EQ(x->name, "x");
  EXPECT_NE(x->init, nullptr);
  auto* b = as<VarDeclStmt>(p.statements[1].get());
  EXPECT_EQ(b->init, nullptr);
}

TEST(Parser, QuantumDeclarations) {
  const Program p = parse(
      "qubit q = |+>; quint a = 5q; quint<8> w = 3q; qustring s = \"01\"q;");
  auto* q = as<VarDeclStmt>(p.statements[0].get());
  EXPECT_EQ(q->type.kind, TypeKind::Qubit);
  as<KetLitExpr>(q->init.get());
  auto* a = as<VarDeclStmt>(p.statements[1].get());
  EXPECT_EQ(a->type.quint_width, 0u);
  auto* w = as<VarDeclStmt>(p.statements[2].get());
  EXPECT_EQ(w->type.quint_width, 8u);
  auto* s = as<VarDeclStmt>(p.statements[3].get());
  EXPECT_EQ(s->type.kind, TypeKind::Qustring);
}

TEST(Parser, ArrayDeclarations) {
  const Program p = parse("int[] xs = [1, 2, 3]; qubit[] qs = [|0>, |1>];");
  auto* xs = as<VarDeclStmt>(p.statements[0].get());
  EXPECT_TRUE(xs->type.is_array());
  EXPECT_EQ(xs->type.element, TypeKind::Int);
  auto* lit = as<ArrayLitExpr>(xs->init.get());
  EXPECT_EQ(lit->elements.size(), 3u);
  EXPECT_FALSE(lit->superposition);
}

TEST(Parser, SuperpositionLiteral) {
  const Program p = parse("quint s = [0, 3]q;");
  auto* decl = as<VarDeclStmt>(p.statements[0].get());
  auto* lit = as<ArrayLitExpr>(decl->init.get());
  EXPECT_TRUE(lit->superposition);
  EXPECT_EQ(lit->elements.size(), 2u);
}

TEST(Parser, QuintWidthBounds) {
  EXPECT_THROW(parse("quint<0> x;"), LangError);
  EXPECT_THROW(parse("quint<99> x;"), LangError);
}

TEST(Parser, AssignmentForms) {
  const Program p = parse("x = 1; x += 2; x <<= 3; a[0] = 4;");
  auto* plain = as<AssignStmt>(p.statements[0].get());
  EXPECT_FALSE(plain->compound.has_value());
  auto* add = as<AssignStmt>(p.statements[1].get());
  EXPECT_EQ(add->compound, BinaryOp::Add);
  auto* shl = as<AssignStmt>(p.statements[2].get());
  EXPECT_EQ(shl->compound, BinaryOp::Shl);
  auto* idx = as<AssignStmt>(p.statements[3].get());
  as<IndexExpr>(idx->lvalue.get());
}

TEST(Parser, AssignmentTargetValidation) {
  EXPECT_THROW(parse("1 = 2;"), LangError);
  EXPECT_THROW(parse("f() = 2;"), LangError);
}

TEST(Parser, Precedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  const Program p = parse("x = 1 + 2 * 3;");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* add = as<BinaryExpr>(assign->value.get());
  EXPECT_EQ(add->op, BinaryOp::Add);
  auto* mul = as<BinaryExpr>(add->rhs.get());
  EXPECT_EQ(mul->op, BinaryOp::Mul);
}

TEST(Parser, ComparisonBindsLooserThanShift) {
  const Program p = parse("b = x << 1 > y;");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* cmp = as<BinaryExpr>(assign->value.get());
  EXPECT_EQ(cmp->op, BinaryOp::Gt);
  auto* shl = as<BinaryExpr>(cmp->lhs.get());
  EXPECT_EQ(shl->op, BinaryOp::Shl);
}

TEST(Parser, LogicalLadder) {
  const Program p = parse("b = a || c && d == e;");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* orr = as<BinaryExpr>(assign->value.get());
  EXPECT_EQ(orr->op, BinaryOp::Or);
  auto* andd = as<BinaryExpr>(orr->rhs.get());
  EXPECT_EQ(andd->op, BinaryOp::And);
}

TEST(Parser, InOperator) {
  const Program p = parse("b = \"01\" in s;");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* in = as<BinaryExpr>(assign->value.get());
  EXPECT_EQ(in->op, BinaryOp::In);
}

TEST(Parser, UnaryChain) {
  const Program p = parse("x = --1; b = !!true; y = ~z;");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* outer = as<UnaryExpr>(assign->value.get());
  as<UnaryExpr>(outer->operand.get());
}

TEST(Parser, IfElseChain) {
  const Program p = parse("if (a) { x = 1; } else if (b) x = 2; else { x = 3; }");
  auto* stmt = as<IfStmt>(p.statements[0].get());
  EXPECT_NE(stmt->else_branch, nullptr);
  as<IfStmt>(stmt->else_branch.get());
}

TEST(Parser, WhileAndForeach) {
  const Program p = parse("while (x < 3) { x += 1; } foreach item in xs { print item; }");
  as<WhileStmt>(p.statements[0].get());
  auto* fe = as<ForeachStmt>(p.statements[1].get());
  EXPECT_EQ(fe->var_name, "item");
}

TEST(Parser, FunctionDeclaration) {
  const Program p = parse("int add(int a, quint b) { return a; }");
  auto* fn = as<FuncDeclStmt>(p.statements[0].get());
  EXPECT_EQ(fn->name, "add");
  ASSERT_EQ(fn->params.size(), 2u);
  EXPECT_EQ(fn->params[0].type.kind, TypeKind::Int);
  EXPECT_EQ(fn->params[1].type.kind, TypeKind::Quint);
  ASSERT_EQ(fn->body->statements.size(), 1u);
  as<ReturnStmt>(fn->body->statements[0].get());
}

TEST(Parser, VoidFunctionNoParams) {
  const Program p = parse("void f() { print 1; }");
  auto* fn = as<FuncDeclStmt>(p.statements[0].get());
  EXPECT_EQ(fn->return_type.kind, TypeKind::Void);
  EXPECT_TRUE(fn->params.empty());
}

TEST(Parser, GateStatements) {
  const Program p = parse("hadamard q; not a, b; pauliz x; measure q; reset q;");
  auto* h = as<GateStmt>(p.statements[0].get());
  EXPECT_EQ(h->gate, GateKind::Hadamard);
  auto* n = as<GateStmt>(p.statements[1].get());
  EXPECT_EQ(n->gate, GateKind::Not);
  EXPECT_EQ(n->operands.size(), 2u);
  auto* m = as<GateStmt>(p.statements[3].get());
  EXPECT_EQ(m->gate, GateKind::MeasureStmt);
}

TEST(Parser, MeasureCallIsExpression) {
  const Program p = parse("b = measure(q);");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* call = as<CallExpr>(assign->value.get());
  EXPECT_EQ(call->callee, "measure");
}

TEST(Parser, CallsAndIndexingChain) {
  const Program p = parse("x = f(1, g(2))[3];");
  auto* assign = as<AssignStmt>(p.statements[0].get());
  auto* idx = as<IndexExpr>(assign->value.get());
  auto* call = as<CallExpr>(idx->target.get());
  EXPECT_EQ(call->args.size(), 2u);
}

TEST(Parser, PrintAndBarrier) {
  const Program p = parse("print 1 + 2; barrier;");
  as<PrintStmt>(p.statements[0].get());
  as<BarrierStmt>(p.statements[1].get());
}

TEST(Parser, SyntaxErrorsCarryLocations) {
  try {
    (void)parse("int x = ;");
    FAIL() << "expected LangError";
  } catch (const LangError& e) {
    EXPECT_EQ(e.location().line, 1u);
  }
  EXPECT_THROW(parse("if (x { }"), LangError);
  EXPECT_THROW(parse("int = 3;"), LangError);
  EXPECT_THROW(parse("x = (1 + 2;"), LangError);
  EXPECT_THROW(parse("foreach in xs {}"), LangError);
}

TEST(Parser, NestedBlocks) {
  const Program p = parse("{ { int x = 1; } }");
  auto* outer = as<BlockStmt>(p.statements[0].get());
  as<BlockStmt>(outer->statements[0].get());
}

TEST(Parser, QuantumLiteralsInExpressions) {
  const Program p = parse("print 5q; print \"01\"q; print [1, 2]q;");
  auto* a = as<PrintStmt>(p.statements[0].get());
  as<QuantumIntLitExpr>(a->value.get());
  auto* b = as<PrintStmt>(p.statements[1].get());
  as<QuantumStringLitExpr>(b->value.get());
  auto* c = as<PrintStmt>(p.statements[2].get());
  EXPECT_TRUE(as<ArrayLitExpr>(c->value.get())->superposition);
}

}  // namespace
