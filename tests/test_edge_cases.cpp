// Edge-case battery across the stack: parser/interpreter corner cases,
// boundary widths, alias semantics, and importer/drawer oddities that the
// per-module suites don't reach.
#include <gtest/gtest.h>

#include "qutes/circuit/draw.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/error.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

// ---- parser / lexer corners ---------------------------------------------------

TEST(Edge, DeeplyNestedExpressions) {
  std::string expr = "1";
  for (int i = 0; i < 60; ++i) expr = "(" + expr + " + 1)";
  EXPECT_EQ(run("print " + expr + ";"), "61\n");
}

TEST(Edge, DeeplyNestedBlocks) {
  std::string source;
  for (int i = 0; i < 50; ++i) source += "{ ";
  source += "print 1;";
  for (int i = 0; i < 50; ++i) source += " }";
  EXPECT_EQ(run(source), "1\n");
}

TEST(Edge, LongIdentifiers) {
  const std::string name(200, 'x');
  EXPECT_EQ(run("int " + name + " = 5; print " + name + ";"), "5\n");
}

TEST(Edge, ChainedElse) {
  EXPECT_EQ(run("int x = 2;"
                "if (x == 1) print \"a\";"
                "else if (x == 2) print \"b\";"
                "else if (x == 3) print \"c\";"
                "else print \"d\";"),
            "b\n");
}

TEST(Edge, DanglingElseBindsToNearestIf) {
  // `else` must attach to the inner if.
  EXPECT_EQ(run("if (true) if (false) print \"inner\"; else print \"else\";"),
            "else\n");
}

TEST(Edge, EmptyBlocksAndFunctions) {
  EXPECT_EQ(run("{} if (true) {} void f() {} f(); print 1;"), "1\n");
}

TEST(Edge, CommentsEverywhere) {
  EXPECT_EQ(run("int /*a*/ x /*b*/ = /*c*/ 1 /*d*/; // e\nprint x;"), "1\n");
}

// ---- classical semantics corners -------------------------------------------------

TEST(Edge, NegativeModuloAndDivision) {
  EXPECT_EQ(run("print -7 / 2; print -7 % 2;"), "-3\n-1\n");  // C++ semantics
}

TEST(Edge, FloatPrinting) {
  EXPECT_EQ(run("print 0.5; print 2.0; print 1.25 + 1.25;"), "0.5\n2\n2.5\n");
}

TEST(Edge, BoolArithmeticCoercion) {
  EXPECT_EQ(run("print true + 1;"), "2\n");  // bool widens to int
  EXPECT_EQ(run("int x = 5; bool b = x; print b;"), "true\n");
}

TEST(Edge, StringComparisonChain) {
  EXPECT_EQ(run("print (\"a\" < \"b\") == (\"b\" < \"c\");"), "true\n");
}

TEST(Edge, ForeachOverEmptyArray) {
  EXPECT_EQ(run("int[] e; foreach x in e { print x; } print \"done\";"), "done\n");
}

TEST(Edge, WhileFalseNeverRuns) {
  EXPECT_EQ(run("while (false) { print \"no\"; } print \"yes\";"), "yes\n");
}

// ---- quantum corners ----------------------------------------------------------------

TEST(Edge, QuintWidthBoundaries) {
  EXPECT_EQ(run("quint<1> x = 1q; print x;"), "1\n");
  // Width 24 is the declared maximum; allocating it alone is legal.
  EXPECT_EQ(run("quint<24> x = 0q; print len(x);"), "24\n");
  EXPECT_THROW(run("quint<25> x = 0q;"), LangError);
  // Value overflowing the declared width.
  EXPECT_THROW(run("quint<2> x = 4q;"), LangError);
}

TEST(Edge, MaxValueEncoding) {
  EXPECT_EQ(run("quint<8> x = 255q; print x;"), "255\n");
}

TEST(Edge, SuperpositionLiteralSingleValueIsBasis) {
  EXPECT_EQ(run("quint s = [5]q; print s;"), "5\n");
}

TEST(Edge, SuperpositionDuplicateRejected) {
  EXPECT_THROW(run("quint s = [1, 1]q;"), LangError);
}

TEST(Edge, QuantumAliasingChains) {
  // c aliases b aliases a: flipping c flips a.
  EXPECT_EQ(run("qubit a = |0>; qubit b = a; qubit c = b; not c; print a;"),
            "true\n");
}

TEST(Edge, QubitIndexAliasesIntoParent) {
  EXPECT_EQ(run("quint<3> x = 0q; qubit b = x[1]; not b; print x;"), "2\n");
}

TEST(Edge, FunctionReturningQuantumAliases) {
  EXPECT_EQ(run("qubit pick(qubit a, qubit b) { return b; } "
                "qubit p = |0>; qubit q = |0>; qubit r = pick(p, q); "
                "not r; print q;"),
            "true\n");
}

TEST(Edge, ShadowedQuantumVariableKeepsOuterRegister) {
  EXPECT_EQ(run("qubit q = |0>; { qubit q = |1>; print q; } print q;"),
            "true\nfalse\n");
}

TEST(Edge, MeasureStatementCollapsesForLater) {
  // After `measure q;` the later read agrees with the collapsed value on
  // every seed (no double randomness).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string out =
        run("qubit q = |+>; measure q; bool a = q; bool b = q; print a == b;",
            seed);
    EXPECT_EQ(out, "true\n");
  }
}

TEST(Edge, ResetStatement) {
  EXPECT_EQ(run("qubit q = |1>; reset q; print q;"), "false\n");
  EXPECT_EQ(run("quint<3> x = 7q; reset x; print x;"), "0\n");
}

TEST(Edge, CompoundAddOnArrayElementQuint) {
  EXPECT_EQ(run("quint<4> a = 1q; quint<4> b = 2q; "
                "not a[1];"  // a = 3
                "a += 2; print a;"),
            "5\n");
}

TEST(Edge, ZeroShiftIsNoop) {
  EXPECT_EQ(run("quint<4> x = 5q; x <<= 0; print x;"), "5\n");
  EXPECT_EQ(run("quint<4> x = 5q; x <<= 4; print x;"), "5\n");  // full turn
}

TEST(Edge, AdditionWithZero) {
  EXPECT_EQ(run("quint a = 5q; quint c = a + 0; print c;"), "5\n");
  EXPECT_EQ(run("quint<4> x = 5q; x += 0; print x;"), "5\n");
}

TEST(Edge, GateStatementOnArrayBroadcasts) {
  EXPECT_EQ(run("qubit[] qs = [|0>, |0>, |0>]; not qs; "
                "print qs[0]; print qs[1]; print qs[2];"),
            "true\ntrue\ntrue\n");
}

// ---- importer / drawer corners ----------------------------------------------------

TEST(Edge, QasmImportBarrierNoArgs) {
  const auto c = circ::qasm::import_circuit("qreg q[2]; h q[0]; barrier; h q[1];");
  EXPECT_EQ(c.count_ops().at("barrier"), 1u);
  // An operandless barrier spans the whole register file.
  for (const auto& in : c.instructions()) {
    if (in.type == circ::GateType::Barrier) {
      EXPECT_EQ(in.qubits.size(), 2u);
    }
  }
}

TEST(Edge, QasmImportRejectsGateBroadcast) {
  // Whole-register single-qubit gate broadcast is not in our subset.
  EXPECT_THROW(circ::qasm::import_circuit("qreg q[2]; h q;"), CircuitError);
}

TEST(Edge, QasmImportConditionOnWholeRegister) {
  // Multi-bit register conditions are rejected with a clear error.
  EXPECT_THROW(circ::qasm::import_circuit(
                   "qreg q[1]; creg c[2]; measure q[0] -> c[0]; "
                   "if (c == 1) x q[0];"),
               CircuitError);
}

TEST(Edge, DrawHandlesMcpAndCswap) {
  circ::QuantumCircuit c(4);
  const std::size_t controls[2] = {0, 1};
  c.mcp(0.5, controls, 2);
  c.cswap(0, 2, 3);
  const std::string art = circ::draw(c);
  EXPECT_NE(art.find("MCP"), std::string::npos);
  EXPECT_NE(art.find("*"), std::string::npos);
}

TEST(Edge, TraceWithQuantumProgramDoesNotPerturbResults) {
  qutes::RunConfig plain, traced;
  plain.seed = traced.seed = 31;
  std::ostringstream sink;
  traced.debug_trace = &sink;
  const std::string source = "quint s = [1, 3]q; print s;";
  EXPECT_EQ(run_source(source, plain).output, run_source(source, traced).output);
}

}  // namespace
