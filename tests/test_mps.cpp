// Unit + property tests for the matrix-product-state simulator: gate
// application against the dense statevector, swap-chain routing, truncation
// accounting, measurement/collapse, the shared-sampler shot walk, and the
// MPS <-> statevector conversions.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <map>
#include <vector>

#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/sim/mps.hpp"
#include "qutes/sim/statevector.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;
using gates::H;
using gates::RX;
using gates::RY;
using gates::RZ;
using gates::U;
using gates::X;

constexpr double kTol = 1e-10;

void expect_states_equal(const Mps& mps, const StateVector& sv, double tol = kTol) {
  ASSERT_EQ(mps.num_qubits(), sv.num_qubits());
  const auto amps = mps.to_statevector();
  ASSERT_EQ(amps.size(), sv.dim());
  for (std::uint64_t i = 0; i < sv.dim(); ++i) {
    EXPECT_NEAR(std::abs(amps[i] - sv.amplitude(i)), 0.0, tol)
        << "amplitude mismatch at basis " << i;
  }
}

/// Mirror a random gate stream onto both simulators.
void random_gates(Mps& mps, StateVector& sv, std::size_t gate_count, Rng& rng) {
  const std::size_t n = mps.num_qubits();
  for (std::size_t g = 0; g < gate_count; ++g) {
    const auto kind = rng.below(3);
    if (kind == 0 || n == 1) {
      const std::size_t q = rng.below(n);
      const Matrix2 u = U(rng.uniform() * 6.28, rng.uniform() * 6.28,
                          rng.uniform() * 6.28);
      mps.apply_1q(u, q);
      sv.apply_1q(u, q);
    } else if (kind == 1) {
      std::size_t a = rng.below(n), b = rng.below(n);
      while (b == a) b = rng.below(n);
      const Matrix2 u = U(rng.uniform() * 6.28, rng.uniform() * 6.28,
                          rng.uniform() * 6.28);
      mps.apply_controlled_1q(u, a, b);
      sv.apply_controlled_1q(u, a, b);
    } else {
      std::size_t a = rng.below(n), b = rng.below(n);
      while (b == a) b = rng.below(n);
      mps.apply_swap(a, b);
      sv.apply_swap(a, b);
    }
  }
}

TEST(Mps, InitialState) {
  Mps mps(3);
  EXPECT_EQ(mps.num_qubits(), 3u);
  EXPECT_NEAR(std::abs(mps.amplitude(0) - cplx{1.0}), 0.0, kTol);
  for (std::uint64_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(mps.amplitude(i)), 0.0, kTol);
  }
  EXPECT_NEAR(mps.norm(), 1.0, kTol);
  EXPECT_EQ(mps.max_bond_dim(), 1u);
  EXPECT_EQ(mps.truncation_error(), 0.0);
}

TEST(Mps, RejectsBadConstruction) {
  EXPECT_THROW(Mps(0), InvalidArgument);
  EXPECT_THROW(Mps(2, {.max_bond_dim = 0, .truncation_threshold = -0.1}),
               InvalidArgument);
  EXPECT_THROW(Mps(2, {.max_bond_dim = 0, .truncation_threshold = 1.5}),
               InvalidArgument);
}

TEST(Mps, SingleQubitGatesMatchStatevector) {
  Mps mps(4);
  StateVector sv(4);
  const std::array<Matrix2, 4> us = {H(), RX(0.7), RY(-1.3), RZ(2.1)};
  for (std::size_t q = 0; q < 4; ++q) {
    mps.apply_1q(us[q], q);
    sv.apply_1q(us[q], q);
  }
  expect_states_equal(mps, sv);
  EXPECT_EQ(mps.max_bond_dim(), 1u);  // product state stays bond-1
}

TEST(Mps, BellStateViaControlledGate) {
  Mps mps(2);
  mps.apply_1q(H(), 0);
  mps.apply_controlled_1q(X(), 0, 1);
  const double amp = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(mps.amplitude(0) - cplx{amp}), 0.0, kTol);
  EXPECT_NEAR(std::abs(mps.amplitude(3) - cplx{amp}), 0.0, kTol);
  EXPECT_NEAR(std::abs(mps.amplitude(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(mps.amplitude(2)), 0.0, kTol);
  EXPECT_EQ(mps.bond_dim(0), 2u);
}

TEST(Mps, DistantControlledGateUsesSwapChain) {
  Mps mps(5);
  StateVector sv(5);
  mps.apply_1q(H(), 0);
  sv.apply_1q(H(), 0);
  mps.apply_controlled_1q(X(), 0, 4);
  sv.apply_controlled_1q(X(), 0, 4);
  expect_states_equal(mps, sv);
  // The chain in between must be back to bond 1 after the swaps return.
  Mps fresh(5);
  fresh.apply_1q(H(), 0);
  fresh.apply_controlled_1q(X(), 0, 4);
  EXPECT_EQ(fresh.bond_dim(1), 2u);
}

TEST(Mps, ReversedOperandOrderMatchesStatevector) {
  // q0/q1 roles swapped relative to chain order: control above target.
  Mps mps(3);
  StateVector sv(3);
  mps.apply_1q(H(), 2);
  sv.apply_1q(H(), 2);
  mps.apply_controlled_1q(X(), 2, 0);
  sv.apply_controlled_1q(X(), 2, 0);
  expect_states_equal(mps, sv);
}

TEST(Mps, Apply2qMatrixMatchesStatevector) {
  Rng rng(0xabcdef);
  Matrix4 u{};
  // A non-symmetric two-qubit unitary: CX sandwiched in random 1q rotations,
  // assembled on the statevector side and read back as a matrix would be
  // overkill — instead use a simple non-trivial unitary: CZ * (RX ⊗ RY).
  // Hand-building guarantees we exercise apply_2q directly.
  const Matrix2 a = RX(0.9), b = RY(-0.4);
  for (std::size_t r1 = 0; r1 < 2; ++r1)
    for (std::size_t r0 = 0; r0 < 2; ++r0)
      for (std::size_t c1 = 0; c1 < 2; ++c1)
        for (std::size_t c0 = 0; c0 < 2; ++c0) {
          cplx val = a(r0, c0) * b(r1, c1);
          if (r1 == 1 && r0 == 1) val *= -1.0;  // CZ phase on |11>
          u.m[(r1 * 2 + r0) * 4 + (c1 * 2 + c0)] = val;
        }
  for (const auto& [q0, q1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 1}, {1, 0}, {0, 3}, {3, 0}, {2, 1}}) {
    Mps mps(4);
    StateVector sv(4);
    Rng gate_rng(0x11 + q0 * 7 + q1);
    random_gates(mps, sv, 6, gate_rng);
    mps.apply_2q(u, q0, q1);
    sv.apply_2q(u, q0, q1);
    expect_states_equal(mps, sv);
  }
}

TEST(Mps, RandomCircuitsMatchStatevectorExactly) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::size_t n = 2 + static_cast<std::size_t>(seed % 5);
    Mps mps(n);
    StateVector sv(n);
    Rng rng(0x5eed00 + seed);
    random_gates(mps, sv, 24, rng);
    expect_states_equal(mps, sv, 1e-9);
    EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
    // No singular value may actually be cut at these widths, but the
    // discarded-weight accumulator sums tiny negative-rounding residues
    // whose exact zeroness depends on FP contraction (-march=native builds
    // produce ~1e-16 here); bound it at float noise instead of == 0.
    EXPECT_LT(mps.truncation_error(), 1e-12);
  }
}

TEST(Mps, GhzAtFortyQubitsStaysBondTwo) {
  const std::size_t n = 40;
  Mps mps(n);
  mps.apply_1q(H(), 0);
  for (std::size_t q = 0; q + 1 < n; ++q) mps.apply_controlled_1q(X(), q, q + 1);
  EXPECT_EQ(mps.max_bond_dim(), 2u);
  const double amp = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(mps.amplitude(0) - cplx{amp}), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(mps.amplitude(~std::uint64_t{0} >> (64 - n)) - cplx{amp}),
              0.0, 1e-9);
  EXPECT_NEAR(std::abs(mps.amplitude(1)), 0.0, 1e-9);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
  EXPECT_NEAR(mps.expectation_z(0), 0.0, 1e-9);
}

TEST(Mps, TruncationCapsBondAndTracksError) {
  // Two-qubit maximally entangled state forced down to bond 1 loses exactly
  // half the weight.
  Mps mps(2, {.max_bond_dim = 1, .truncation_threshold = 0.0});
  mps.apply_1q(H(), 0);
  mps.apply_controlled_1q(X(), 0, 1);
  EXPECT_EQ(mps.max_bond_dim(), 1u);
  EXPECT_EQ(mps.max_bond_dim_reached(), 1u);
  EXPECT_NEAR(mps.truncation_error(), 0.5, 1e-9);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-9);  // renormalized after the cut
}

TEST(Mps, MeasureCollapsesGhz) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Mps mps(6);
    mps.apply_1q(H(), 0);
    for (std::size_t q = 0; q + 1 < 6; ++q) mps.apply_controlled_1q(X(), q, q + 1);
    Rng rng(seed);
    const int first = mps.measure(0, rng);
    for (std::size_t q = 1; q < 6; ++q) {
      EXPECT_NEAR(mps.probability_one(q), static_cast<double>(first), 1e-9);
    }
    EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
  }
}

TEST(Mps, ResetReturnsQubitToZero) {
  Mps mps(3);
  mps.apply_1q(H(), 1);
  mps.apply_controlled_1q(X(), 1, 2);
  Rng rng(7);
  mps.reset_qubit(1, rng);
  EXPECT_NEAR(mps.probability_one(1), 0.0, 1e-9);
  EXPECT_NEAR(mps.norm(), 1.0, 1e-9);
}

TEST(Mps, SamplingMatchesStatevectorStreamExactly) {
  // Same state, same Rng stream => sample() must return the identical basis
  // index the statevector's per-qubit chain would only match in
  // distribution; here we check MPS internal determinism and support.
  Mps mps(3);
  mps.apply_1q(H(), 0);
  mps.apply_controlled_1q(X(), 0, 1);
  mps.apply_controlled_1q(X(), 1, 2);
  const auto sampler = mps.make_sampler();
  std::map<std::uint64_t, std::size_t> counts;
  const std::size_t shots = 4096;
  for (std::size_t s = 0; s < shots; ++s) {
    Rng rng(0x5eed, s);
    ++counts[mps.sample(sampler, rng)];
  }
  ASSERT_EQ(counts.size(), 2u);  // GHZ: only 000 and 111
  EXPECT_TRUE(counts.count(0));
  EXPECT_TRUE(counts.count(7));
  EXPECT_NEAR(static_cast<double>(counts[0]) / shots, 0.5, 0.05);
}

TEST(Mps, SharedSamplerIsDeterministicPerStream) {
  Mps mps(4);
  Rng gate_rng(42);
  StateVector sv(4);
  random_gates(mps, sv, 16, gate_rng);
  const auto sampler = mps.make_sampler();
  for (std::size_t s = 0; s < 32; ++s) {
    Rng r1(0xabc, s), r2(0xabc, s);
    EXPECT_EQ(mps.sample(sampler, r1), mps.sample(sampler, r2));
  }
}

TEST(Mps, StatevectorRoundTrip) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    StateVector sv(5);
    Mps scratch(5);
    Rng rng(0xf00d + seed);
    random_gates(scratch, sv, 20, rng);
    const Mps mps = Mps::from_statevector(sv);
    EXPECT_EQ(mps.truncation_error(), 0.0);
    expect_states_equal(mps, sv, 1e-9);
  }
}

TEST(Mps, FromStatevectorHonorsTruncation) {
  StateVector sv(2);
  sv.apply_1q(H(), 0);
  sv.apply_controlled_1q(X(), 0, 1);
  const Mps mps = Mps::from_statevector(sv, {.max_bond_dim = 1});
  EXPECT_EQ(mps.max_bond_dim(), 1u);
  EXPECT_NEAR(mps.truncation_error(), 0.5, 1e-9);
}

TEST(Mps, ApplyKqDispatchesAndRejectsWide) {
  Mps mps(3);
  StateVector sv(3);
  mps.apply_kq(MatrixN::from_1q(H()), std::array<std::size_t, 1>{1});
  sv.apply_1q(H(), 1);
  Matrix4 cx{};
  cx.m[0 * 4 + 0] = cplx{1.0};
  cx.m[1 * 4 + 3] = cplx{1.0};
  cx.m[2 * 4 + 2] = cplx{1.0};
  cx.m[3 * 4 + 1] = cplx{1.0};
  mps.apply_kq(MatrixN::from_2q(cx), std::array<std::size_t, 2>{1, 2});
  sv.apply_2q(cx, 1, 2);
  expect_states_equal(mps, sv);

  const MatrixN wide = MatrixN::identity(3);
  EXPECT_THROW(mps.apply_kq(wide, std::array<std::size_t, 3>{0, 1, 2}),
               InvalidArgument);
}

TEST(Mps, GlobalPhaseRotatesEveryAmplitude) {
  Mps mps(2);
  StateVector sv(2);
  mps.apply_1q(H(), 0);
  sv.apply_1q(H(), 0);
  mps.apply_global_phase(1.234);
  sv.apply_global_phase(1.234);
  expect_states_equal(mps, sv);
}

TEST(Mps, ToStatevectorGuardsLargeRegisters) {
  Mps mps(Mps::kMaxDenseQubits + 1);
  EXPECT_THROW((void)mps.to_statevector(), SimulationError);
}

TEST(Mps, ExpectationZOnBasisStates) {
  Mps mps(2);
  EXPECT_NEAR(mps.expectation_z(0), 1.0, kTol);
  mps.apply_1q(X(), 1);
  EXPECT_NEAR(mps.expectation_z(1), -1.0, kTol);
}

}  // namespace
