// DSL surface of the paper's §6 extensions: database builtins
// (qmin/qmax/qsearch), debugging tools (dump_state, prob, --trace), and the
// statement trace plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

// ---- database builtins ---------------------------------------------------------

TEST(DbBuiltins, QminQmaxOnIntArrays) {
  EXPECT_EQ(run("print qmin([9, 4, 13, 2, 7]);"), "2\n");
  EXPECT_EQ(run("print qmax([9, 4, 13, 2, 7]);"), "13\n");
  EXPECT_EQ(run("int[] xs = [5, 5, 5]; print qmin(xs); print qmax(xs);"), "5\n5\n");
}

TEST(DbBuiltins, QminAcrossSeedsIsAlwaysExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(run("print qmin([21, 8, 30, 3, 17, 11, 25, 6]);", seed), "3\n");
    EXPECT_EQ(run("print qmax([21, 8, 30, 3, 17, 11, 25, 6]);", seed), "30\n");
  }
}

TEST(DbBuiltins, QsearchFindsIndex) {
  EXPECT_EQ(run("print qsearch([9, 4, 13, 2], 13);"), "2\n");
  EXPECT_EQ(run("print qsearch([9, 4, 13, 2], 99);"), "-1\n");
}

TEST(DbBuiltins, QsearchInlinesARealCircuit) {
  qutes::RunConfig options;
  options.seed = 3;
  const auto result =
      run_source("int idx = qsearch([9, 4, 13, 2, 7, 11, 0, 6], 11);", options);
  EXPECT_GT(result.num_qubits, 5u);   // index + value registers allocated
  EXPECT_GT(result.gate_count, 40u);  // loads + oracle + diffusion
  bool found_register = false;
  for (const auto& reg : result.circuit.qregs()) {
    if (reg.name.find("qsearch") != std::string::npos) found_register = true;
  }
  EXPECT_TRUE(found_register);
}

TEST(DbBuiltins, Validation) {
  EXPECT_THROW(run("print qmin(3);"), LangError);
  EXPECT_THROW(run("print qmin([-1, 2]);"), LangError);
  EXPECT_THROW(run("int[] e; print qmin(e);"), LangError);
}

// ---- debugging tools -------------------------------------------------------------

TEST(Debug, DumpStateShowsAmplitudes) {
  EXPECT_EQ(run("print dump_state();"), "(no qubits)\n");
  const std::string out = run("qubit q = |1>; print dump_state();");
  EXPECT_NE(out.find("|1>"), std::string::npos);
  const std::string plus = run("qubit q = |+>; print dump_state();");
  EXPECT_NE(plus.find("|0>"), std::string::npos);
  EXPECT_NE(plus.find("|1>"), std::string::npos);
  EXPECT_NE(plus.find("0.7071"), std::string::npos);
}

TEST(Debug, ProbReadsWithoutCollapsing) {
  // prob() twice on |+> gives 0.5 both times (a measurement would pin it).
  EXPECT_EQ(run("qubit q = |+>; print prob(q); print prob(q);"), "0.5\n0.5\n");
  EXPECT_EQ(run("qubit q = |1>; print prob(q);"), "1\n");
}

TEST(Debug, ProbAppendsNothingToTheCircuit) {
  qutes::RunConfig options;
  const auto result = run_source("qubit q = |+>; float p = prob(q);", options);
  EXPECT_EQ(result.circuit.count_ops().count("measure"), 0u);
}

TEST(Debug, TraceEmitsOneLinePerStatement) {
  qutes::RunConfig options;
  std::ostringstream trace;
  options.debug_trace = &trace;
  (void)run_source("int x = 1; x += 2; print x;", options);
  const std::string text = trace.str();
  EXPECT_NE(text.find("[trace] 1:"), std::string::npos);
  EXPECT_NE(text.find("decl"), std::string::npos);
  EXPECT_NE(text.find("assign"), std::string::npos);
  EXPECT_NE(text.find("print"), std::string::npos);
  // Three top-level statements -> at least three trace lines.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_GE(lines, 3u);
}

TEST(Debug, TraceReportsCircuitGrowth) {
  qutes::RunConfig options;
  std::ostringstream trace;
  options.debug_trace = &trace;
  (void)run_source("qubit q = |0>; hadamard q; hadamard q;", options);
  const std::string text = trace.str();
  EXPECT_NE(text.find("qubits=0"), std::string::npos);  // before the decl
  EXPECT_NE(text.find("qubits=1 gates=1"), std::string::npos);  // after first H
}

TEST(Debug, TraceOffByDefault) {
  qutes::RunConfig options;
  const auto result = run_source("print 1;", options);
  EXPECT_EQ(result.output, "1\n");  // no trace text mixed into output
}

}  // namespace
