// Direct unit tests for the vectorized statevector kernels (sim/kernels.hpp),
// below the StateVector wrapper: every structure fast path (diagonal,
// antidiagonal, controlled, k-qubit diagonal) must agree with the generic
// dense kernel, and every ISA variant the machine can run (Portable / Avx2 /
// Avx512) must produce the same amplitudes. The higher-level differential
// suites only exercise whichever ISA active_isa() picks; these tests pass the
// Isa explicitly so one process covers the whole dispatch ladder, including
// the sizes that cross the OpenMP parallel threshold.
#include <gtest/gtest.h>

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "qutes/common/rng.hpp"
#include "qutes/sim/kernels.hpp"

namespace kn = qutes::sim::kernels;
using cplx = kn::cplx;
using qutes::Rng;

namespace {

std::vector<cplx> random_state(std::size_t num_qubits, std::uint64_t seed) {
  std::vector<cplx> amps(std::uint64_t{1} << num_qubits);
  Rng rng(seed);
  for (cplx& a : amps) a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
  return amps;
}

cplx random_cplx(Rng& rng) {
  return cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
}

/// Every ISA this build + CPU can actually execute. Portable is always first
/// and serves as the reference variant.
std::vector<kn::Isa> available_isas() {
  std::vector<kn::Isa> isas = {kn::Isa::Portable};
  if (kn::isa_available(kn::Isa::Avx2)) isas.push_back(kn::Isa::Avx2);
  if (kn::isa_available(kn::Isa::Avx512)) isas.push_back(kn::Isa::Avx512);
  return isas;
}

/// FMA contraction reorders roundoff vs the portable loops; 1e-12 absolute
/// on O(1) amplitudes leaves ~4 decimal digits of slack over double epsilon.
void expect_amps_near(const std::vector<cplx>& expected,
                      const std::vector<cplx>& actual, const char* what,
                      kn::Isa isa) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(std::abs(expected[i] - actual[i]), 0.0, 1e-12)
        << what << " isa=" << kn::isa_name(isa) << " amp=" << i;
  }
}

}  // namespace

TEST(Kernels, DiagonalFastPathMatchesDenseOnEveryIsa) {
  Rng rng(0xd1a6);
  for (const std::size_t num_qubits : {4u, 15u}) {  // 15 crosses the OMP gate
    for (std::size_t target = 0; target < num_qubits; target += 3) {
      const cplx d0 = random_cplx(rng), d1 = random_cplx(rng);
      const cplx dense[4] = {d0, {}, {}, d1};
      std::vector<cplx> reference = random_state(num_qubits, 11 * target + 1);
      const std::vector<cplx> initial = reference;
      kn::apply_1q_dense(kn::Isa::Portable, reference.data(), reference.size(),
                         target, dense);
      for (const kn::Isa isa : available_isas()) {
        std::vector<cplx> amps = initial;
        kn::apply_1q_diag(isa, amps.data(), amps.size(), target, d0, d1);
        expect_amps_near(reference, amps, "1q-diag", isa);
      }
    }
  }
}

TEST(Kernels, AntidiagonalFastPathMatchesDenseOnEveryIsa) {
  Rng rng(0xa7d1);
  for (const std::size_t num_qubits : {4u, 15u}) {
    for (std::size_t target = 0; target < num_qubits; target += 3) {
      const cplx a01 = random_cplx(rng), a10 = random_cplx(rng);
      const cplx dense[4] = {{}, a01, a10, {}};
      std::vector<cplx> reference = random_state(num_qubits, 13 * target + 7);
      const std::vector<cplx> initial = reference;
      kn::apply_1q_dense(kn::Isa::Portable, reference.data(), reference.size(),
                         target, dense);
      for (const kn::Isa isa : available_isas()) {
        std::vector<cplx> amps = initial;
        kn::apply_1q_antidiag(isa, amps.data(), amps.size(), target, a01, a10);
        expect_amps_near(reference, amps, "1q-antidiag", isa);
      }
    }
  }
}

TEST(Kernels, Dense1qAgreesAcrossIsas) {
  Rng rng(0xde4e);
  for (const std::size_t num_qubits : {5u, 15u}) {
    for (std::size_t target = 0; target < num_qubits; target += 2) {
      cplx u[4];
      for (cplx& e : u) e = random_cplx(rng);
      std::vector<cplx> reference = random_state(num_qubits, 17 * target + 3);
      const std::vector<cplx> initial = reference;
      kn::apply_1q_dense(kn::Isa::Portable, reference.data(), reference.size(),
                         target, u);
      for (const kn::Isa isa : available_isas()) {
        std::vector<cplx> amps = initial;
        kn::apply_1q_dense(isa, amps.data(), amps.size(), target, u);
        expect_amps_near(reference, amps, "1q-dense", isa);
      }
    }
  }
}

TEST(Kernels, ControlledFastPathsMatchControlledDense) {
  // diag and antidiag controlled kernels vs the controlled dense kernel with
  // the equivalent 2x2, across 1..3 unsorted controls and every ISA.
  Rng rng(0xc7a1);
  const std::size_t num_qubits = 10;
  const std::vector<std::vector<std::size_t>> control_sets = {
      {4}, {7, 2}, {9, 0, 5}};
  for (const auto& controls : control_sets) {
    const std::size_t target = 3;
    const cplx d0 = random_cplx(rng), d1 = random_cplx(rng);
    const cplx a01 = random_cplx(rng), a10 = random_cplx(rng);
    const cplx diag_u[4] = {d0, {}, {}, d1};
    const cplx anti_u[4] = {{}, a01, a10, {}};
    const std::vector<cplx> initial = random_state(num_qubits, controls.size());

    std::vector<cplx> ref_diag = initial;
    kn::apply_ctrl_1q_dense(kn::Isa::Portable, ref_diag.data(), ref_diag.size(),
                            controls.data(), controls.size(), target, diag_u);
    std::vector<cplx> ref_anti = initial;
    kn::apply_ctrl_1q_dense(kn::Isa::Portable, ref_anti.data(), ref_anti.size(),
                            controls.data(), controls.size(), target, anti_u);
    for (const kn::Isa isa : available_isas()) {
      std::vector<cplx> amps = initial;
      kn::apply_ctrl_1q_diag(isa, amps.data(), amps.size(), controls.data(),
                             controls.size(), target, d0, d1);
      expect_amps_near(ref_diag, amps, "ctrl-diag", isa);
      amps = initial;
      kn::apply_ctrl_1q_antidiag(isa, amps.data(), amps.size(), controls.data(),
                                 controls.size(), target, a01, a10);
      expect_amps_near(ref_anti, amps, "ctrl-antidiag", isa);
    }
  }
}

TEST(Kernels, KqDiagonalFastPathMatchesDenseMatrix) {
  Rng rng(0x2bd1);
  const std::size_t num_qubits = 10;
  const std::vector<std::vector<std::size_t>> target_sets = {
      {6, 1}, {2, 8, 4}, {9, 0, 5, 3}, {1, 7, 3, 9, 5}};
  for (const auto& targets : target_sets) {
    const std::size_t k = targets.size();
    const std::size_t block = std::size_t{1} << k;
    std::vector<cplx> diag(block);
    for (cplx& d : diag) d = random_cplx(rng);
    std::vector<cplx> dense(block * block, cplx{});
    for (std::size_t l = 0; l < block; ++l) dense[l * block + l] = diag[l];
    const std::vector<cplx> initial = random_state(num_qubits, 29 * k);

    std::vector<cplx> reference = initial;
    kn::apply_kq_dense(kn::Isa::Portable, reference.data(), reference.size(),
                       targets.data(), k, dense.data());
    for (const kn::Isa isa : available_isas()) {
      std::vector<cplx> amps = initial;
      kn::apply_kq_diag(isa, amps.data(), amps.size(), targets.data(), k,
                        diag.data());
      expect_amps_near(reference, amps, "kq-diag", isa);
    }
  }
}

TEST(Kernels, KqDenseAgreesAcrossIsas) {
  // The load-bearing case for the AVX-512 tier: k >= 4 takes the zmm
  // matvec + hardware gather/scatter path, k in {2, 3} the AVX2 ymm path.
  // Random (non-unitary is fine — the kernel is plain linear algebra) dense
  // blocks on unsorted target sets, checked entry-for-entry vs Portable.
  Rng rng(0x6a7e);
  const std::size_t num_qubits = 11;
  const std::vector<std::vector<std::size_t>> target_sets = {
      {6, 1}, {2, 8, 4}, {9, 0, 5, 3}, {1, 7, 3, 10, 5}, {4, 0, 8, 2, 10, 6}};
  for (const auto& targets : target_sets) {
    const std::size_t k = targets.size();
    const std::size_t block = std::size_t{1} << k;
    std::vector<cplx> matrix(block * block);
    for (cplx& e : matrix) e = random_cplx(rng);
    const std::vector<cplx> initial = random_state(num_qubits, 31 * k);

    std::vector<cplx> reference = initial;
    kn::apply_kq_dense(kn::Isa::Portable, reference.data(), reference.size(),
                       targets.data(), k, matrix.data());
    for (const kn::Isa isa : available_isas()) {
      std::vector<cplx> amps = initial;
      kn::apply_kq_dense(isa, amps.data(), amps.size(), targets.data(), k,
                         matrix.data());
      expect_amps_near(reference, amps, "kq-dense", isa);
    }
  }
}

TEST(Kernels, KqDenseAgreesAcrossIsasAboveParallelThreshold) {
  // dim >> k >= 2^14 groups flips the kernels into their OpenMP-chunked
  // loops; the decomposition must not change a single amplitude.
  Rng rng(0x0317);
  const std::size_t num_qubits = 18;
  const std::vector<std::size_t> targets = {11, 3, 16, 7};
  const std::size_t block = std::size_t{1} << targets.size();
  std::vector<cplx> matrix(block * block);
  for (cplx& e : matrix) e = random_cplx(rng);
  const std::vector<cplx> initial = random_state(num_qubits, 0xb16);

  std::vector<cplx> reference = initial;
  kn::apply_kq_dense(kn::Isa::Portable, reference.data(), reference.size(),
                     targets.data(), targets.size(), matrix.data());
  for (const kn::Isa isa : available_isas()) {
    std::vector<cplx> amps = initial;
    kn::apply_kq_dense(isa, amps.data(), amps.size(), targets.data(),
                       targets.size(), matrix.data());
    expect_amps_near(reference, amps, "kq-dense-parallel", isa);
  }
}

TEST(Kernels, EnvOverrideNamesAndAvailability) {
  EXPECT_STREQ(kn::isa_name(kn::Isa::Portable), "portable");
  EXPECT_STREQ(kn::isa_name(kn::Isa::Avx2), "avx2");
  EXPECT_STREQ(kn::isa_name(kn::Isa::Avx512), "avx512");
  EXPECT_TRUE(kn::isa_available(kn::Isa::Portable));
  // Avx512 implies Avx2 in the detection ladder: the 1q paths of the
  // AVX-512 tier are the AVX2 kernels.
  if (kn::isa_available(kn::Isa::Avx512)) {
    EXPECT_TRUE(kn::isa_available(kn::Isa::Avx2));
  }
  // force_isa must round-trip through any available ISA.
  for (const kn::Isa isa : available_isas()) {
    kn::force_isa(isa);
    EXPECT_EQ(kn::active_isa(), isa);
  }
  kn::reset_isa();
  EXPECT_TRUE(kn::isa_available(kn::active_isa()));
}
