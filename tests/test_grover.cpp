// Grover search tests (E2): diffusion operator, iteration-count formula,
// success amplification on single/multiple marked states, and the substring
// search machinery behind the Qutes `in` operator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/grover.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

TEST(Grover, OptimalIterationFormula) {
  // N=4, M=1: theta = asin(1/2) = pi/6, pi/(4 theta) = 1.5 -> 1.
  EXPECT_EQ(optimal_grover_iterations(4, 1), 1u);
  // N=16, M=1: ~3.
  EXPECT_EQ(optimal_grover_iterations(16, 1), 3u);
  // N=256, M=1: ~12.
  EXPECT_EQ(optimal_grover_iterations(256, 1), 12u);
  // Degenerate inputs: no marked states clamps to 1; half-or-more marked
  // means amplification over-rotates, so the optimum is 0 iterations
  // (uniform measurement already succeeds with P >= 1/2).
  EXPECT_EQ(optimal_grover_iterations(8, 0), 1u);
  EXPECT_EQ(optimal_grover_iterations(8, 4), 0u);
  EXPECT_EQ(optimal_grover_iterations(8, 8), 0u);
}

TEST(Grover, IterationsScaleAsSqrtN) {
  const std::size_t i8 = optimal_grover_iterations(1ULL << 8, 1);
  const std::size_t i12 = optimal_grover_iterations(1ULL << 12, 1);
  const std::size_t i16 = optimal_grover_iterations(1ULL << 16, 1);
  // Each +4 qubits multiplies iterations by ~4 (sqrt of 16).
  EXPECT_NEAR(static_cast<double>(i12) / i8, 4.0, 0.5);
  EXPECT_NEAR(static_cast<double>(i16) / i12, 4.0, 0.5);
}

class GroverSingleMark : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroverSingleMark, HighSuccessProbability) {
  const std::size_t n = GetParam();
  const std::uint64_t marked[] = {dim_of(n) - 2};
  const GroverResult result = run_grover(n, marked, /*seed=*/n);
  EXPECT_GT(result.success_probability, 0.8) << "n=" << n;
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.outcome, marked[0]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroverSingleMark, ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(Grover, MultipleMarkedStates) {
  const std::uint64_t marked[] = {1, 6, 11};
  // P(success) ~ 0.95: individual shots can miss, so require a strong
  // majority of hits across seeds.
  int hits = 0;
  double p = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const GroverResult result = run_grover(4, marked, seed);
    hits += result.hit;
    p = result.success_probability;
  }
  EXPECT_GT(p, 0.85);
  EXPECT_GE(hits, 7);
}

TEST(Grover, SuccessProbabilityOscillates) {
  // Over-rotating past the optimum must REDUCE success probability — the
  // hallmark of amplitude amplification.
  const std::uint64_t marked[] = {5};
  const std::size_t best = optimal_grover_iterations(dim_of(4), 1);
  const GroverResult at_best = run_grover(4, marked, 3, best);
  const GroverResult over = run_grover(4, marked, 3, 2 * best + 1);
  EXPECT_GT(at_best.success_probability, over.success_probability);
}

TEST(Grover, SingleIterationOnFourStatesIsExact) {
  // N=4, M=1 reaches probability 1 after one iteration.
  const std::uint64_t marked[] = {2};
  const GroverResult result = run_grover(2, marked, 4);
  EXPECT_NEAR(result.success_probability, 1.0, 1e-9);
}

TEST(Grover, DiffusionPreservesUniform) {
  // Diffusion fixes the uniform superposition (up to global phase).
  circ::QuantumCircuit c(3);
  std::vector<std::size_t> qubits = {0, 1, 2};
  for (std::size_t q : qubits) c.h(q);
  append_diffusion(c, qubits);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::norm(traj.state.amplitude(i)), 1.0 / 8.0, 1e-9);
  }
}

TEST(Grover, BuildCircuitValidates) {
  const std::uint64_t marked[] = {0};
  const std::vector<std::uint64_t> empty;
  EXPECT_THROW((void)build_grover_circuit(0, marked), Error);
  EXPECT_THROW((void)build_grover_circuit(3, empty), Error);
}

// ---- substring search ------------------------------------------------------------

TEST(Substring, ClassicalMatchEnumeration) {
  const SubstringSearch search("0110100", "01");
  EXPECT_EQ(search.matches(), (std::vector<std::uint64_t>{0, 3}));
  const SubstringSearch none("0000", "11");
  EXPECT_TRUE(none.matches().empty());
}

TEST(Substring, InputValidation) {
  EXPECT_THROW(SubstringSearch("01", "011"), Error);   // pattern longer
  EXPECT_THROW(SubstringSearch("01", ""), Error);      // empty pattern
  EXPECT_THROW(SubstringSearch("0a1", "0"), Error);    // non-bitstring
  EXPECT_THROW(SubstringSearch("01", "x"), Error);
}

TEST(Substring, RegisterSizing) {
  // 7 text bits, pattern of 3 -> 5 positions -> 3 index bits + 3 window.
  const SubstringSearch search("0110100", "101");
  EXPECT_EQ(search.index_qubits(), 3u);
  EXPECT_EQ(search.total_qubits(), 6u);
}

class SubstringSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubstringSweep, FindsAndVerifies) {
  struct Case {
    const char* text;
    const char* pattern;
  };
  static const Case cases[] = {
      {"0110100", "101"},   // one match at 2
      {"01101001", "01"},   // matches at 0, 3, 6
      {"11111111", "111"},  // dense matches
      {"10000001", "1"},    // matches at ends
      {"0101010", "010"},   // overlapping matches
  };
  const Case& test_case = cases[GetParam()];
  const SubstringSearch search(test_case.text, test_case.pattern);
  ASSERT_FALSE(search.matches().empty());
  // Success probability is the same every run; hits are statistical, so
  // demand a majority across seeds, and that hits always self-verify.
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const GroverResult result = search.run(seed);
    EXPECT_GT(result.success_probability, 0.5)
        << test_case.text << " / " << test_case.pattern;
    if (result.hit) {
      ++hits;
      // The measured position must be a genuine classical match.
      EXPECT_NE(std::find(search.matches().begin(), search.matches().end(),
                          result.outcome),
                search.matches().end());
    }
  }
  EXPECT_GE(hits, 6) << test_case.text << " / " << test_case.pattern;
}

INSTANTIATE_TEST_SUITE_P(Cases, SubstringSweep, ::testing::Range(0, 5));

TEST(Substring, SingleMatchHitsWithHighProbability) {
  const SubstringSearch search("00010000", "001");
  ASSERT_EQ(search.matches().size(), 1u);
  const GroverResult result = search.run(23);
  EXPECT_GT(result.success_probability, 0.8);
  EXPECT_EQ(result.outcome, search.matches()[0]);
}

TEST(Substring, AbsentPatternRarelyVerifies) {
  const SubstringSearch search("000000", "111");
  ASSERT_TRUE(search.matches().empty());
  const GroverResult result = search.run(29);
  // hit requires classical verification, which must fail for every position.
  EXPECT_FALSE(result.hit);
  EXPECT_NEAR(result.success_probability, 0.0, 1e-9);
}

TEST(Substring, PaddingPositionsCannotMatch) {
  // 6 positions padded to 8: the two padding indices load the pattern's
  // complement, so the oracle never marks them. All real positions match,
  // so M/N = 3/4 and the optimum is 0 iterations: uniform measurement with
  // exactly P = 0.75 of landing on a real (verifying) position.
  const SubstringSearch search("111111", "1");
  ASSERT_EQ(search.matches().size(), 6u);
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const GroverResult result = search.run(seed);
    EXPECT_NEAR(result.success_probability, 0.75, 1e-9);
    if (result.hit) {
      EXPECT_LT(result.outcome, 6u);
      ++hits;
    }
  }
  EXPECT_GT(hits, 20);  // ~30 expected at P = 0.75
}

TEST(Substring, OracleCallCountMatchesTheory) {
  const SubstringSearch search("0001000000000000", "001");  // 14 positions -> 4 bits
  const GroverResult result = search.run(37);
  EXPECT_EQ(result.oracle_calls,
            optimal_grover_iterations(16, search.matches().size()));
}

}  // namespace
