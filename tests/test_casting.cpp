// TypeCastingHandler + QuantumCircuitHandler unit tests: promotion encodes
// the right basis state, measurement demotes to the right classical type,
// coercion rules, and the handler's register/measurement bookkeeping.
#include <gtest/gtest.h>

#include "qutes/common/bitops.hpp"
#include "qutes/lang/casting_handler.hpp"
#include "qutes/lang/circuit_handler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

TEST(Handler, AllocateGrowsStateAndRegisters) {
  QuantumCircuitHandler handler(1);
  const QuantumRef a = handler.allocate("a", 2, TypeKind::Quint);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(a.width, 2u);
  const QuantumRef b = handler.allocate("b", 3, TypeKind::Quint);
  EXPECT_EQ(b.offset, 2u);
  EXPECT_EQ(handler.num_qubits(), 5u);
  EXPECT_EQ(handler.circuit().qregs().size(), 2u);
  EXPECT_NEAR(handler.state().norm(), 1.0, 1e-12);
}

TEST(Handler, NameUniquification) {
  QuantumCircuitHandler handler(1);
  handler.allocate("x", 1, TypeKind::Qubit);
  handler.allocate("x", 1, TypeKind::Qubit);
  handler.allocate("x", 1, TypeKind::Qubit);
  const auto& regs = handler.circuit().qregs();
  EXPECT_EQ(regs[0].name, "x");
  EXPECT_EQ(regs[1].name, "x_1");
  EXPECT_EQ(regs[2].name, "x_2");
}

TEST(Handler, EncodeAndMeasureRoundTrip) {
  QuantumCircuitHandler handler(1);
  const QuantumRef ref = handler.allocate("v", 5, TypeKind::Quint);
  handler.encode_bits(ref, 21);
  EXPECT_EQ(handler.measure(ref), 21u);
  // Measure instructions recorded with a classical register.
  EXPECT_EQ(handler.circuit().count_ops().at("measure"), 5u);
  EXPECT_EQ(handler.num_clbits(), 5u);
}

TEST(Handler, EncodeValidatesWidth) {
  QuantumCircuitHandler handler(1);
  const QuantumRef ref = handler.allocate("v", 2, TypeKind::Quint);
  EXPECT_THROW(handler.encode_bits(ref, 4), LangError);
}

TEST(Handler, CopyBasisDuplicatesBasisContent) {
  QuantumCircuitHandler handler(1);
  const QuantumRef src = handler.allocate("s", 3, TypeKind::Quint);
  handler.encode_bits(src, 5);
  const QuantumRef dst = handler.allocate("d", 3, TypeKind::Quint);
  handler.copy_basis(src, dst);
  EXPECT_EQ(handler.measure(dst), 5u);
  EXPECT_EQ(handler.measure(src), 5u);  // source unchanged
}

TEST(Handler, ResetReturnsToZero) {
  QuantumCircuitHandler handler(1);
  const QuantumRef ref = handler.allocate("r", 2, TypeKind::Quint);
  handler.encode_bits(ref, 3);
  handler.reset(ref);
  EXPECT_EQ(handler.measure(ref), 0u);
}

TEST(Handler, ComposeInlineMapsRegistersAndClbits) {
  QuantumCircuitHandler handler(1);
  handler.allocate("existing", 2, TypeKind::Quint);

  circ::QuantumCircuit sub;
  sub.add_register("q", 2);
  sub.add_classical_register("c", 2);
  sub.x(0);
  sub.measure(0, 0);
  sub.measure(1, 1);

  const std::uint64_t bits = handler.compose_inline(sub, "inl");
  EXPECT_EQ(bits, 1u);  // qubit0 was X'd -> clbit0 = 1
  // The registers were cloned with the prefix.
  bool found = false;
  for (const auto& reg : handler.circuit().qregs()) {
    if (reg.name == "inl_q") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(handler.num_qubits(), 4u);
}

TEST(Handler, ComposeInlineHonorsConditions) {
  QuantumCircuitHandler handler(1);
  circ::QuantumCircuit sub;
  sub.add_register("q", 2);
  sub.add_classical_register("c", 2);
  sub.x(0);
  sub.measure(0, 0);
  sub.x(1).c_if(0, 1);   // fires: clbit0 == 1
  sub.measure(1, 1);
  const std::uint64_t bits = handler.compose_inline(sub, "cond");
  EXPECT_EQ(bits, 0b11u);
}

TEST(Handler, QubitBudget) {
  QuantumCircuitHandler handler(1);
  handler.allocate("small", 4, TypeKind::Quint);
  // 4 + 23 exceeds the 26-qubit budget; must throw BEFORE allocating.
  EXPECT_THROW(handler.allocate("big", 23, TypeKind::Quint), LangError);
  EXPECT_EQ(handler.num_qubits(), 4u);
}

// ---- casting -----------------------------------------------------------------------

TEST(Casting, WidthForInt) {
  EXPECT_EQ(TypeCastingHandler::width_for_int(0), 1u);
  EXPECT_EQ(TypeCastingHandler::width_for_int(1), 1u);
  EXPECT_EQ(TypeCastingHandler::width_for_int(5), 3u);
  EXPECT_EQ(TypeCastingHandler::width_for_int(255), 8u);
  EXPECT_THROW((void)TypeCastingHandler::width_for_int(-1), LangError);
}

TEST(Casting, PromoteIntEncodesValue) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value six(QType::scalar(TypeKind::Int), std::int64_t{6});
  const ValuePtr q = casting.promote(six, "x", 0, {});
  EXPECT_EQ(q->as_quantum().width, 3u);
  EXPECT_EQ(handler.measure(q->as_quantum()), 6u);
}

TEST(Casting, PromoteWithWidthHint) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value three(QType::scalar(TypeKind::Int), std::int64_t{3});
  const ValuePtr q = casting.promote(three, "x", 7, {});
  EXPECT_EQ(q->as_quantum().width, 7u);
  const Value big(QType::scalar(TypeKind::Int), std::int64_t{100});
  EXPECT_THROW((void)casting.promote(big, "y", 3, {}), LangError);
}

TEST(Casting, PromoteBoolAndString) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value t(QType::scalar(TypeKind::Bool), true);
  const ValuePtr q = casting.promote(t, "b", 0, {});
  EXPECT_EQ(q->as_quantum().kind, TypeKind::Qubit);
  EXPECT_EQ(handler.measure(q->as_quantum()), 1u);

  const Value bits(QType::scalar(TypeKind::String), std::string("101"));
  const ValuePtr s = casting.promote(bits, "s", 0, {});
  EXPECT_EQ(s->as_quantum().kind, TypeKind::Qustring);
  EXPECT_EQ(s->as_quantum().width, 3u);
  // char 0 = qubit 0: "101" -> bits 0 and 2 set -> 0b101 = 5.
  EXPECT_EQ(handler.measure(s->as_quantum()), 5u);
}

TEST(Casting, PromoteRejectsBadInputs) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value neg(QType::scalar(TypeKind::Int), std::int64_t{-2});
  EXPECT_THROW((void)casting.promote(neg, "x", 0, {}), LangError);
  const Value notbits(QType::scalar(TypeKind::String), std::string("abc"));
  EXPECT_THROW((void)casting.promote(notbits, "s", 0, {}), LangError);
  const Value f(QType::scalar(TypeKind::Float), 1.5);
  EXPECT_THROW((void)casting.promote(f, "f", 0, {}), LangError);
}

TEST(Casting, MeasureToClassicalTypes) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value v(QType::scalar(TypeKind::Int), std::int64_t{9});
  const ValuePtr q = casting.promote(v, "x", 0, {});
  const ValuePtr c = casting.measure_to_classical(*q);
  EXPECT_EQ(c->kind(), TypeKind::Int);
  EXPECT_EQ(c->as_int(), 9);
}

TEST(Casting, CoerceAliasesMatchingQuantum) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const Value v(QType::scalar(TypeKind::Int), std::int64_t{2});
  const ValuePtr q = casting.promote(v, "x", 0, {});
  const ValuePtr alias = casting.coerce(q, QType::scalar(TypeKind::Quint), "y", {});
  EXPECT_EQ(alias.get(), q.get());  // same storage: no cloning
}

TEST(Casting, CoerceClassicalWidenings) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  const ValuePtr i = Value::make_int(3);
  const ValuePtr f = casting.coerce(i, QType::scalar(TypeKind::Float), "f", {});
  EXPECT_EQ(f->kind(), TypeKind::Float);
  EXPECT_DOUBLE_EQ(f->as_float(), 3.0);
  const ValuePtr b = casting.coerce(i, QType::scalar(TypeKind::Bool), "b", {});
  EXPECT_TRUE(b->as_bool());
  EXPECT_THROW((void)casting.coerce(f, QType::scalar(TypeKind::String), "s", {}),
               LangError);
}

TEST(Casting, ConditionBoolRules) {
  QuantumCircuitHandler handler(1);
  TypeCastingHandler casting(handler);
  EXPECT_TRUE(casting.condition_bool(Value(QType::scalar(TypeKind::Int),
                                           std::int64_t{2}), {}));
  EXPECT_FALSE(casting.condition_bool(Value(QType::scalar(TypeKind::Float), 0.0), {}));
  EXPECT_TRUE(casting.condition_bool(Value(QType::scalar(TypeKind::String),
                                           std::string("x")), {}));
  // Quantum condition: measures.
  const Value one(QType::scalar(TypeKind::Int), std::int64_t{1});
  const ValuePtr q = casting.promote(one, "c", 0, {});
  EXPECT_TRUE(casting.condition_bool(*q, {}));
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value::make_bool(true)->to_display_string(), "true");
  EXPECT_EQ(Value::make_int(-4)->to_display_string(), "-4");
  EXPECT_EQ(Value::make_string("hi")->to_display_string(), "hi");
  const auto arr = Value::make_array(TypeKind::Int,
                                     {Value::make_int(1), Value::make_int(2)});
  EXPECT_EQ(arr->to_display_string(), "[1, 2]");
}

TEST(Value, CheckedAccessorsThrowOnMismatch) {
  const ValuePtr i = Value::make_int(1);
  EXPECT_THROW((void)i->as_string(), LangError);
  EXPECT_THROW((void)i->as_quantum(), LangError);
  EXPECT_NO_THROW((void)i->as_float());  // int widens to float
}

}  // namespace
