// Tests for the QuantumCircuit IR: builders, validation, registers,
// composition, inversion, and the depth/size metrics.
#include <gtest/gtest.h>

#include "qutes/circuit/circuit.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

TEST(Circuit, AnonymousConstruction) {
  QuantumCircuit c(3, 2);
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.num_clbits(), 2u);
  ASSERT_EQ(c.qregs().size(), 1u);
  EXPECT_EQ(c.qregs()[0].name, "q");
}

TEST(Circuit, NamedRegistersGetFlatOffsets) {
  QuantumCircuit c;
  const auto& a = c.add_register("a", 2);
  const auto& b = c.add_register("b", 3);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 2u);
  EXPECT_EQ(b[1], 3u);
  EXPECT_EQ(c.num_qubits(), 5u);
}

// add_register used to return a reference into the circuit's register
// vector, which dangled as soon as a later add_register() reallocated it
// (heap-use-after-free under ASan in every two-register algorithm builder).
// It now returns by value; handles must stay usable across later adds.
TEST(Circuit, RegisterHandlesSurviveLaterRegisterAdds) {
  QuantumCircuit c;
  const QuantumRegister a = c.add_register("a", 2);
  // Force several reallocations of the underlying vectors.
  for (int i = 0; i < 16; ++i) {
    c.add_register("r" + std::to_string(i), 1);
    c.add_classical_register("k" + std::to_string(i), 1);
  }
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(c.num_qubits(), 18u);
}

TEST(Circuit, DuplicateRegisterRejected) {
  QuantumCircuit c;
  c.add_register("r", 1);
  EXPECT_THROW(c.add_register("r", 2), CircuitError);
  EXPECT_THROW(c.add_register("empty", 0), CircuitError);
}

TEST(Circuit, FluentBuildersAppend) {
  QuantumCircuit c(3, 3);
  c.h(0).cx(0, 1).ccx(0, 1, 2).rz(0.5, 2).measure(2, 0);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.instructions()[1].type, GateType::CX);
  EXPECT_EQ(c.instructions()[3].params[0], 0.5);
}

TEST(Circuit, OperandValidation) {
  QuantumCircuit c(2, 1);
  EXPECT_THROW(c.h(2), CircuitError);                // out of range
  EXPECT_THROW(c.cx(0, 0), CircuitError);            // duplicate operand
  EXPECT_THROW(c.measure(0, 1), CircuitError);       // clbit out of range
  EXPECT_THROW(c.cswap(1, 1, 0), CircuitError);      // duplicate
}

TEST(Circuit, McxStoresControlsThenTarget) {
  QuantumCircuit c(4);
  const std::size_t controls[3] = {0, 1, 2};
  c.mcx(controls, 3);
  const Instruction& in = c.instructions()[0];
  EXPECT_EQ(in.type, GateType::MCX);
  EXPECT_EQ(in.qubits.size(), 4u);
  EXPECT_EQ(in.target(), 3u);
}

TEST(Circuit, CIfAttachesToLastInstruction) {
  QuantumCircuit c(1, 1);
  c.x(0).c_if(0, 1);
  ASSERT_TRUE(c.instructions()[0].condition.has_value());
  EXPECT_EQ(c.instructions()[0].condition->clbit, 0u);
  EXPECT_EQ(c.instructions()[0].condition->value, 1);
  QuantumCircuit empty(1, 1);
  EXPECT_THROW(empty.c_if(0, 1), CircuitError);
  EXPECT_THROW(c.x(0).c_if(0, 7), CircuitError);
}

TEST(Circuit, MeasureAllGrowsClbits) {
  QuantumCircuit c(3);
  c.measure_all();
  EXPECT_EQ(c.num_clbits(), 3u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Circuit, DepthSerialVsParallel) {
  QuantumCircuit serial(1);
  serial.h(0).x(0).z(0);
  EXPECT_EQ(serial.depth(), 3u);

  QuantumCircuit parallel(3);
  parallel.h(0).h(1).h(2);
  EXPECT_EQ(parallel.depth(), 1u);

  QuantumCircuit mixed(2);
  mixed.h(0).h(1).cx(0, 1).x(0);
  EXPECT_EQ(mixed.depth(), 3u);
}

TEST(Circuit, BarrierSynchronizesWithoutDepth) {
  QuantumCircuit c(2);
  c.h(0);
  c.barrier();
  c.h(1);
  // h(1) is forced after the barrier, which sits after h(0): depth 2.
  EXPECT_EQ(c.depth(), 2u);
  EXPECT_EQ(c.gate_count(), 2u);  // barrier not counted
}

TEST(Circuit, CountOps) {
  QuantumCircuit c(2, 1);
  c.h(0).h(1).cx(0, 1).measure(1, 0);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("h"), 2u);
  EXPECT_EQ(counts.at("cx"), 1u);
  EXPECT_EQ(counts.at("measure"), 1u);
  EXPECT_EQ(c.multi_qubit_gate_count(), 1u);
}

TEST(Circuit, ComposeRemapsOperands) {
  QuantumCircuit inner(2, 1);
  inner.h(0).cx(0, 1).measure(1, 0);

  QuantumCircuit outer(4, 2);
  const std::size_t qmap[2] = {2, 3};
  const std::size_t cmap[1] = {1};
  outer.compose(inner, qmap, cmap);
  ASSERT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer.instructions()[0].qubits[0], 2u);
  EXPECT_EQ(outer.instructions()[1].qubits[1], 3u);
  EXPECT_EQ(outer.instructions()[2].clbits[0], 1u);
}

TEST(Circuit, ComposeSizeMismatchRejected) {
  QuantumCircuit inner(2);
  inner.h(0);
  QuantumCircuit outer(4);
  const std::size_t bad[1] = {0};
  EXPECT_THROW(outer.compose(inner, bad), CircuitError);
}

TEST(Circuit, InverseReversesAndNegatesAngles) {
  QuantumCircuit c(2);
  c.h(0).rz(0.7, 0).cx(0, 1).t(1);
  const QuantumCircuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv.instructions()[0].type, GateType::Tdg);
  EXPECT_EQ(inv.instructions()[1].type, GateType::CX);
  EXPECT_EQ(inv.instructions()[2].type, GateType::RZ);
  EXPECT_DOUBLE_EQ(inv.instructions()[2].params[0], -0.7);
  EXPECT_EQ(inv.instructions()[3].type, GateType::H);
}

TEST(Circuit, InverseRejectsNonUnitary) {
  QuantumCircuit c(1, 1);
  c.h(0).measure(0, 0);
  EXPECT_THROW((void)c.inverse(), CircuitError);
}

TEST(Circuit, RepeatConcatenates) {
  QuantumCircuit c(1);
  c.h(0).t(0);
  const QuantumCircuit r = c.repeat(3);
  EXPECT_EQ(r.size(), 6u);
  EXPECT_EQ(r.num_qubits(), 1u);
}

TEST(Circuit, GateMetadata) {
  EXPECT_EQ(fixed_arity(GateType::H), 1u);
  EXPECT_EQ(fixed_arity(GateType::CX), 2u);
  EXPECT_EQ(fixed_arity(GateType::CCX), 3u);
  EXPECT_EQ(fixed_arity(GateType::MCX), 0u);  // variadic
  EXPECT_EQ(param_count(GateType::U), 3u);
  EXPECT_EQ(param_count(GateType::CP), 1u);
  EXPECT_STREQ(gate_name(GateType::Sdg), "sdg");
  EXPECT_TRUE(is_unitary_gate(GateType::SWAP));
  EXPECT_FALSE(is_unitary_gate(GateType::Measure));
}

TEST(Circuit, BadArityRejected) {
  QuantumCircuit c(3);
  Instruction in;
  in.type = GateType::CX;
  in.qubits = {0};
  EXPECT_THROW(c.append(in), CircuitError);
  Instruction mc;
  mc.type = GateType::MCX;
  mc.qubits = {0};  // needs >= 2
  EXPECT_THROW(c.append(mc), CircuitError);
  Instruction p;
  p.type = GateType::P;
  p.qubits = {0};   // missing parameter
  EXPECT_THROW(c.append(p), CircuitError);
}

}  // namespace
