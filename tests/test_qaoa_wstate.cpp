// QAOA-for-MaxCut, GHZ/W-state preparation, and Executor per-shot memory.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/algorithms/entanglement.hpp"
#include "qutes/algorithms/qaoa.hpp"
#include "qutes/algorithms/variational.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"
#include "qutes/sim/observables.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// ---- MaxCut bookkeeping --------------------------------------------------------

TEST(MaxCut, CutValueAndBruteForce) {
  const MaxCutInstance ring4{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  EXPECT_EQ(ring4.cut_value(0b0101), 4u);  // alternating: every edge cut
  EXPECT_EQ(ring4.cut_value(0b0000), 0u);
  EXPECT_EQ(ring4.cut_value(0b0001), 2u);
  EXPECT_EQ(ring4.max_cut_brute_force(), 4u);

  const MaxCutInstance triangle{3, {{0, 1}, {1, 2}, {2, 0}}};
  EXPECT_EQ(triangle.max_cut_brute_force(), 2u);  // odd cycle: one edge uncut
}

TEST(Qaoa, CircuitShape) {
  const MaxCutInstance path3{3, {{0, 1}, {1, 2}}};
  const std::vector<double> gammas = {0.3, 0.5};
  const std::vector<double> betas = {0.2, 0.4};
  const auto c = build_qaoa_circuit(path3, gammas, betas);
  EXPECT_EQ(c.num_qubits(), 3u);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("h"), 3u);
  EXPECT_EQ(counts.at("cx"), 2u * 2u * 2u);  // 2 CX per edge per layer
  EXPECT_EQ(counts.at("rz"), 4u);
  EXPECT_EQ(counts.at("rx"), 6u);
  const std::vector<double> mismatched = {0.1};
  EXPECT_THROW((void)build_qaoa_circuit(path3, mismatched, betas), Error);
}

class QaoaGraphs : public ::testing::TestWithParam<int> {};

TEST_P(QaoaGraphs, ReachesTheOptimalCut) {
  static const MaxCutInstance graphs[] = {
      {2, {{0, 1}}},                                   // single edge: cut 1
      {3, {{0, 1}, {1, 2}}},                           // path: cut 2
      {4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}},           // ring: cut 4
      {3, {{0, 1}, {1, 2}, {2, 0}}},                   // triangle: cut 2
      {5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}},
  };
  const MaxCutInstance& g = graphs[GetParam()];
  const std::size_t optimum = g.max_cut_brute_force();

  // Gradient ascent on the expected cut through the unified driver: the
  // symbolic ansatz is built once, every evaluation is a bind.
  const std::size_t p = 2;
  VariationalProblem problem;
  problem.ansatz = build_qaoa_ansatz(g, p);
  problem.hamiltonian = maxcut_hamiltonian(g);
  problem.maximize = true;
  Rng rng(23);
  problem.initial_parameters.resize(2 * p);
  for (double& a : problem.initial_parameters) a = 0.1 + 0.3 * rng.uniform();
  MinimizeOptions options;
  options.max_iterations = 300;
  const MinimizeResult result = minimize(problem, options);

  // Sampling the optimized state must surface the optimal assignment...
  const circ::QuantumCircuit bound = problem.ansatz.bind(result.parameters);
  circ::Executor ex({.shots = 1, .seed = 2});
  const auto traj = ex.run_single(bound);
  std::size_t best_cut = 0;
  std::uint64_t best_assignment = 0;
  for (std::size_t s = 0; s < 512; ++s) {
    const std::uint64_t assignment = traj.state.sample(rng);
    const std::size_t cut = g.cut_value(assignment);
    if (cut >= best_cut) {
      best_cut = cut;
      best_assignment = assignment;
    }
  }
  EXPECT_EQ(best_cut, optimum) << "graph " << GetParam();
  EXPECT_EQ(g.cut_value(best_assignment), optimum);
  // ...and the variational expectation should be a decent fraction of it.
  EXPECT_GT(result.value, 0.7 * static_cast<double>(optimum));
}

INSTANTIATE_TEST_SUITE_P(Graphs, QaoaGraphs, ::testing::Range(0, 5));

// The deprecated wrapper keeps its QaoaResult contract (gammas/betas in the
// old convention, sampled best assignment) on top of minimize().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Qaoa, DeprecatedRunQaoaWrapperStillFindsTheCut) {
  const MaxCutInstance ring{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  QaoaOptions options;
  options.layers = 2;
  options.max_sweeps = 60;
  options.seed = 23;
  const QaoaResult result = run_qaoa(ring, options);
  EXPECT_EQ(result.best_cut, ring.max_cut_brute_force());
  EXPECT_EQ(result.gammas.size(), 2u);
  EXPECT_EQ(result.betas.size(), 2u);
}

TEST(Qaoa, ExpectationNeverExceedsOptimum) {
  const MaxCutInstance ring{4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  QaoaOptions options;
  options.layers = 1;
  options.seed = 5;
  const QaoaResult result = run_qaoa(ring, options);
  EXPECT_LE(result.expected_cut,
            static_cast<double>(ring.max_cut_brute_force()) + 1e-9);
}
#pragma GCC diagnostic pop

// ---- GHZ / W states -------------------------------------------------------------

TEST(Ghz, ArbitraryWidth) {
  for (std::size_t n : {2u, 3u, 5u}) {
    circ::QuantumCircuit c(n);
    append_ghz(c, iota(n));
    circ::Executor ex({.shots = 1, .seed = 1});
    const auto traj = ex.run_single(c);
    EXPECT_NEAR(std::norm(traj.state.amplitude(0)), 0.5, 1e-12);
    EXPECT_NEAR(std::norm(traj.state.amplitude(dim_of(n) - 1)), 0.5, 1e-12);
    // X...X stabilizer.
    EXPECT_NEAR(sim::expectation_pauli(traj.state, std::string(n, 'X')), 1.0, 1e-12);
  }
}

TEST(WState, OneHotSuperposition) {
  const std::size_t n = 4;
  circ::QuantumCircuit c(n);
  append_w_state(c, iota(n));
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  for (std::uint64_t basis = 0; basis < dim_of(n); ++basis) {
    const double expect = std::popcount(basis) == 1 ? 0.25 : 0.0;
    EXPECT_NEAR(std::norm(traj.state.amplitude(basis)), expect, 1e-9) << basis;
  }
}

TEST(WState, RobustToSingleMeasurement) {
  // Measuring one qubit of W_3 as 0 leaves the remaining pair entangled
  // (unlike GHZ, which collapses to a product state).
  Rng rng(17);
  int entangled_remainder = 0;
  for (int trial = 0; trial < 30; ++trial) {
    circ::QuantumCircuit c(3);
    append_w_state(c, iota(3));
    circ::Executor ex({.shots = 1, .seed = rng()});
    auto traj = ex.run_single(c);
    Rng mrng(rng());
    if (traj.state.measure(2, mrng) == 0) {
      // Remaining state should be (|01> + |10>)/sqrt2: check ZZ correlator.
      if (std::abs(traj.state.expectation_zz(0, 1) + 1.0) < 1e-9) {
        ++entangled_remainder;
      }
    }
  }
  EXPECT_GT(entangled_remainder, 10);
}

// ---- Executor memory -------------------------------------------------------------

TEST(ExecutorMemory, RecordsPerShotOutcomes) {
  circ::QuantumCircuit c(1, 1);
  c.h(0).measure(0, 0);
  qutes::RunConfig options;
  options.shots = 64;
  options.seed = 5;
  options.record_memory = true;
  const auto result = circ::Executor(options).run(c);
  ASSERT_EQ(result.memory.size(), 64u);
  // Memory must be consistent with the histogram.
  std::size_t ones = 0;
  for (const auto& shot : result.memory) ones += shot == "1";
  EXPECT_EQ(ones, result.counts.count("1") ? result.counts.at("1") : 0u);
}

TEST(ExecutorMemory, OffByDefaultAndWorksOnDynamicPath) {
  circ::QuantumCircuit c(2, 2);
  c.h(0).measure(0, 0);
  c.x(1).c_if(0, 1);  // dynamic path
  c.measure(1, 1);
  qutes::RunConfig off;
  off.shots = 8;
  EXPECT_TRUE(circ::Executor(off).run(c).memory.empty());

  qutes::RunConfig on = off;
  on.record_memory = true;
  const auto result = circ::Executor(on).run(c);
  ASSERT_EQ(result.memory.size(), 8u);
  for (const auto& shot : result.memory) {
    EXPECT_TRUE(shot == "00" || shot == "11") << shot;
  }
}

}  // namespace
