// Pauli-string observables and the array-utility builtins.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/common/error.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/sim/observables.hpp"

namespace {

using namespace qutes;
using namespace qutes::sim;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return lang::run_source(source, options).output;
}

// ---- Pauli observables ---------------------------------------------------------

TEST(Pauli, SingleQubitBasics) {
  StateVector zero(1);
  EXPECT_NEAR(expectation_pauli(zero, "Z"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(zero, "X"), 0.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(zero, "Y"), 0.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(zero, "I"), 1.0, 1e-12);

  StateVector plus(1);
  plus.apply_1q(gates::H(), 0);
  EXPECT_NEAR(expectation_pauli(plus, "X"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(plus, "Z"), 0.0, 1e-12);

  StateVector y_plus(1);  // (|0> + i|1>)/sqrt2: +1 eigenstate of Y
  y_plus.apply_1q(gates::H(), 0);
  y_plus.apply_1q(gates::S(), 0);
  EXPECT_NEAR(expectation_pauli(y_plus, "Y"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(y_plus, "X"), 0.0, 1e-12);
}

TEST(Pauli, BellStateStabilizers) {
  // Phi+ is stabilized by XX and ZZ, anti-stabilized by YY.
  StateVector bell(2);
  bell.apply_1q(gates::H(), 0);
  bell.apply_controlled_1q(gates::X(), 0, 1);
  EXPECT_NEAR(expectation_pauli(bell, "XX"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(bell, "ZZ"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(bell, "YY"), -1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(bell, "XZ"), 0.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(bell, "IZ"), 0.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(bell, "II"), 1.0, 1e-12);
}

TEST(Pauli, GhzParity) {
  // GHZ_3 is stabilized by XXX and by ZZI/IZZ.
  StateVector ghz(3);
  ghz.apply_1q(gates::H(), 0);
  ghz.apply_controlled_1q(gates::X(), 0, 1);
  ghz.apply_controlled_1q(gates::X(), 1, 2);
  EXPECT_NEAR(expectation_pauli(ghz, "XXX"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(ghz, "ZZI"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(ghz, "IZZ"), 1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(ghz, "ZII"), 0.0, 1e-12);
}

TEST(Pauli, MsbFirstConvention) {
  // X on qubit 1 of |00>, string "XI": first char acts on qubit 1.
  StateVector sv(2);
  sv.apply_1q(gates::X(), 1);
  EXPECT_NEAR(expectation_pauli(sv, "ZI"), -1.0, 1e-12);
  EXPECT_NEAR(expectation_pauli(sv, "IZ"), 1.0, 1e-12);
}

TEST(Pauli, InputUnmodifiedAndValidation) {
  StateVector sv(2);
  sv.apply_1q(gates::H(), 0);
  const StateVector copy = sv;
  (void)expectation_pauli(sv, "XY");
  EXPECT_NEAR(sv.fidelity(copy), 1.0, 1e-12);
  EXPECT_THROW((void)expectation_pauli(sv, "X"), InvalidArgument);     // wrong length
  EXPECT_THROW((void)expectation_pauli(sv, "XQ"), InvalidArgument);    // bad char
}

TEST(Pauli, RotatedStateAnalytic) {
  // RY(theta)|0>: <Z> = cos(theta), <X> = sin(theta).
  const double theta = 0.83;
  StateVector sv(1);
  sv.apply_1q(gates::RY(theta), 0);
  EXPECT_NEAR(expectation_pauli(sv, "Z"), std::cos(theta), 1e-12);
  EXPECT_NEAR(expectation_pauli(sv, "X"), std::sin(theta), 1e-12);
}

// ---- array builtins --------------------------------------------------------------

TEST(ArrayBuiltins, Range) {
  EXPECT_EQ(run("print range(4);"), "[0, 1, 2, 3]\n");
  EXPECT_EQ(run("print len(range(0));"), "0\n");
  EXPECT_EQ(run("int t = 0; foreach i in range(5) { t += i; } print t;"), "10\n");
  EXPECT_THROW(run("print range(-1);"), LangError);
}

TEST(ArrayBuiltins, AppendMutatesInPlace) {
  EXPECT_EQ(run("int[] xs = [1]; append(xs, 2); append(xs, 3); print xs;"),
            "[1, 2, 3]\n");
  // By-reference: append inside a function is visible to the caller.
  EXPECT_EQ(run("void push9(int[] xs) { append(xs, 9); } "
                "int[] a = [1]; push9(a); print a;"),
            "[1, 9]\n");
  EXPECT_EQ(run("int[] e; append(e, 7); print e;"), "[7]\n");
}

TEST(ArrayBuiltins, Reverse) {
  EXPECT_EQ(run("int[] xs = [1, 2, 3]; reverse(xs); print xs;"), "[3, 2, 1]\n");
}

TEST(ArrayBuiltins, ComposeWithDatabaseOps) {
  EXPECT_EQ(run("int[] xs = range(8); reverse(xs); print qmax(xs); print qmin(xs);"),
            "7\n0\n");
}

}  // namespace
