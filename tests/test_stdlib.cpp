// Standard-library tests: every stdlib function (they are written in Qutes,
// so these are also end-to-end interpreter tests), collision rules, and the
// opt-out flag.
#include <gtest/gtest.h>

#include <set>

#include "qutes/lang/compiler.hpp"
#include "qutes/lang/stdlib.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

TEST(Stdlib, ParsesAndRegistersEveryAdvertisedFunction) {
  CompileResult compiled = compile_source("");
  for (const std::string& name : stdlib_function_names()) {
    EXPECT_NE(compiled.functions.lookup(name), nullptr) << name;
  }
}

TEST(Stdlib, ClassicalHelpers) {
  EXPECT_EQ(run("print abs_i(-5); print abs_i(3);"), "5\n3\n");
  EXPECT_EQ(run("print min_i(2, 9); print max_i(2, 9);"), "2\n9\n");
  EXPECT_EQ(run("print pow_i(2, 10); print pow_i(3, 0);"), "1024\n1\n");
  EXPECT_EQ(run("print sum([1, 2, 3, 4]);"), "10\n");
  EXPECT_EQ(run("print count([1, 2, 1, 1], 1);"), "3\n");
  EXPECT_EQ(run("print contains([4, 5], 5); print contains([4, 5], 6);"),
            "true\nfalse\n");
}

TEST(Stdlib, SuperposeAndFlip) {
  EXPECT_EQ(run("quint<3> x = 0q; flip_all(x); print x;"), "7\n");
  // superpose then un-superpose via a second stdlib call.
  EXPECT_EQ(run("quint<2> x = 0q; superpose(x); superpose(x); print x;"), "0\n");
}

TEST(Stdlib, Ghz3Correlates) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(run("qubit a = |0>; qubit b = |0>; qubit c = |0>; "
                  "ghz3(a, b, c); bool x = a; bool y = b; bool z = c; "
                  "print x == y && y == z;",
                  seed),
              "true\n");
  }
}

TEST(Stdlib, CoinIsFairAcrossSeeds) {
  int heads = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    if (run("print coin();", seed) == "true\n") ++heads;
  }
  EXPECT_GT(heads, 15);
  EXPECT_LT(heads, 45);
}

TEST(Stdlib, QrandomInRange) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const std::string out = run("print qrandom(3);", seed);
    const int v = std::stoi(out);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 8);
    seen.insert(out);
  }
  EXPECT_GE(seen.size(), 4u);  // genuinely random
}

TEST(Stdlib, TeleportMovesTheState) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    EXPECT_EQ(run("qubit m = |1>; qubit a = |0>; qubit b = |0>; "
                  "teleport(m, a, b); print b;",
                  seed),
              "true\n")
        << "seed " << seed;
  }
}

TEST(Stdlib, EntanglementSwapViaLibrary) {
  const std::string source = R"(
    qubit a = |0>; qubit b = |0>; qubit c = |0>; qubit d = |0>;
    bell(a, b);
    bell(c, d);
    entanglement_swap(b, c, d);
    bool va = a; bool vd = d;
    print va == vd;
  )";
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    EXPECT_EQ(run(source, seed), "true\n") << "seed " << seed;
  }
}

TEST(Stdlib, DeutschJozsaWrapper) {
  EXPECT_EQ(run("print dj_is_constant4(0);"), "true\n");
  EXPECT_EQ(run("print dj_is_constant4(5);"), "false\n");
  EXPECT_EQ(run("print dj_is_constant4(15);"), "false\n");
}

TEST(Stdlib, UserCannotRedefineStdlibFunctions) {
  EXPECT_THROW(run("int sum(int[] xs) { return 0; }"), LangError);
}

TEST(Stdlib, OptOutRemovesTheLibrary) {
  qutes::RunConfig options;
  options.include_stdlib = false;
  EXPECT_THROW((void)run_source("print abs_i(1);", options), LangError);
  // ...and then redefining is allowed.
  const auto result = run_source("int sum(int[] xs) { return -1; } "
                                 "print sum([5]);",
                                 options);
  EXPECT_EQ(result.output, "-1\n");
}

TEST(Stdlib, PureDeclarationsAddNoQubitsOrGates) {
  qutes::RunConfig options;
  const auto result = run_source("print 1;", options);
  EXPECT_EQ(result.num_qubits, 0u);
  EXPECT_EQ(result.gate_count, 0u);
}

}  // namespace
