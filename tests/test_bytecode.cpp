// Bytecode engine suite: lowering (constant folding, dead-branch
// elimination), the versioned serialized artifact (round trip, corrupt and
// truncated rejection), VM/tree-walk semantic parity on the tricky scope and
// call-time cases, the static nesting guards against the deep-nesting crash
// corpus, and exec-mode selection (flag + QUTES_EXEC_MODE environment).
//
// The broad randomized parity sweep lives in test_differential.cpp
// (Differential.VmMatchesTreeWalkOnRandomPrograms); this file pins the
// corner cases a random generator is unlikely to hit.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "qutes/lang/bytecode.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/lang/lower.hpp"
#include "qutes/lang/vm.hpp"
#include "qutes/obs/obs.hpp"

namespace lang = qutes::lang;
using qutes::ExecMode;
using qutes::LangError;

namespace {

/// Observable result of one engine: print output on success, LangError text
/// (with its "line:col:" prefix) on rejection.
struct Outcome {
  bool ok = false;
  std::string text;
};

Outcome run_mode(const std::string& source, ExecMode mode,
                 bool include_stdlib = false) {
  qutes::RunConfig config;
  config.seed = 7;
  config.include_stdlib = include_stdlib;
  config.exec_mode = mode;
  Outcome out;
  try {
    out.text = lang::run_source(source, config).output;
    out.ok = true;
  } catch (const LangError& e) {
    out.text = e.what();
  }
  return out;
}

/// Both engines must agree exactly — success/failure, output, diagnostic.
void expect_parity(const std::string& source, bool include_stdlib = false) {
  const Outcome vm = run_mode(source, ExecMode::Vm, include_stdlib);
  const Outcome ast = run_mode(source, ExecMode::Ast, include_stdlib);
  EXPECT_EQ(vm.ok, ast.ok) << "vm: " << vm.text << "\nast: " << ast.text
                           << "\nsource:\n" << source;
  EXPECT_EQ(vm.text, ast.text) << "source:\n" << source;
}

std::string listing(const std::string& source) {
  return lang::lower_source(source, /*include_stdlib=*/false).disassemble();
}

}  // namespace

// ---- lowering --------------------------------------------------------------

TEST(Lowering, FoldsClassicalConstantExpressions) {
  const std::string text = listing("print 2 + 3 * 4;");
  EXPECT_NE(text.find("push_int 14"), std::string::npos) << text;
  EXPECT_EQ(text.find("binary"), std::string::npos) << text;
}

TEST(Lowering, FoldsWithTwosComplementWraparound) {
  // Folding must reproduce the runtime's wraparound arithmetic, not the
  // host compiler's UB: INT64_MAX + 1 folds to INT64_MIN.
  const Outcome vm = run_mode("print 9223372036854775807 + 1;", ExecMode::Vm);
  ASSERT_TRUE(vm.ok) << vm.text;
  EXPECT_EQ(vm.text, "-9223372036854775808\n");
  expect_parity("print 9223372036854775807 + 1;");
}

TEST(Lowering, NeverFoldsFailingExpressions) {
  // 1 / 0 must raise at run time (with the runtime's message), not at
  // lowering time and not fold into garbage.
  expect_parity("print 1 / 0;");
  // ... and not at all when the division never executes.
  expect_parity("if (false) { print 1 / 0; } print 7;");
}

TEST(Lowering, EliminatesDeadBranches) {
  const std::string text = listing("if (1 < 2) { print 10; } else { print 20; }");
  EXPECT_NE(text.find("push_int 10"), std::string::npos) << text;
  EXPECT_EQ(text.find("push_int 20"), std::string::npos) << text;
  EXPECT_EQ(text.find("jump_if_false"), std::string::npos) << text;
}

TEST(Lowering, DropsWhileFalseEntirely) {
  const std::string text = listing("while (false) { print 1; } print 2;");
  EXPECT_EQ(text.find("push_int 1\t"), std::string::npos) << text;
  EXPECT_NE(text.find("push_int 2"), std::string::npos) << text;
}

TEST(Lowering, ShortCircuitSkipsRhs) {
  // `false && (1/0 == 0)` must not evaluate the rhs — and folding the
  // decided lhs must drop the rhs without tripping over its division.
  expect_parity("print false && (1 / 0 == 0);");
  expect_parity("print true || (1 / 0 == 0);");
}

TEST(Lowering, StatementNestingGuardFiresCleanly) {
  // 1100 nested blocks exceed the statement-nesting ceiling: the lowerer
  // rejects statically, the tree-walk dynamically — both via LangError.
  std::string source;
  for (int i = 0; i < 1100; ++i) source += "{ ";
  source += "print 1;";
  for (int i = 0; i < 1100; ++i) source += " }";
  EXPECT_FALSE(run_mode(source, ExecMode::Vm).ok);
  EXPECT_FALSE(run_mode(source, ExecMode::Ast).ok);
}

TEST(Lowering, ExpressionDepthGuardMatchesTreeWalk) {
  // The parser's recursion ceiling (512) sits below the evaluators' depth
  // limit (1000), so over-deep expressions are rejected before either
  // engine runs — with one identical diagnostic from both paths.
  std::string source = "print ";
  for (int i = 0; i < 1100; ++i) source += "(";
  source += "1";
  for (int i = 0; i < 1100; ++i) source += ")";
  source += ";";
  const Outcome vm = run_mode(source, ExecMode::Vm);
  const Outcome ast = run_mode(source, ExecMode::Ast);
  ASSERT_FALSE(vm.ok);
  ASSERT_FALSE(ast.ok);
  EXPECT_EQ(vm.text, ast.text);
  EXPECT_NE(vm.text.find("nesting exceeds the maximum depth"),
            std::string::npos)
      << vm.text;
}

// ---- semantic parity corner cases ------------------------------------------

TEST(VmParity, RedeclarationDiagnosticsMatch) {
  expect_parity("int x = 1; int x = 2;");
  // A fresh lexical scope per iteration: re-entering a block redeclares
  // legally, so this must succeed in both engines.
  expect_parity("int i = 0; while (i < 3) { int x = i; print x; i = i + 1; }");
  // Shadowing in a foreach body, fresh per element.
  expect_parity("foreach v in [1, 2, 3] { int d = v * 2; print d; }");
}

TEST(VmParity, UndeclaredVariableDiagnosticsMatch) {
  expect_parity("print nope;");
  expect_parity("nope = 3;");
  expect_parity("int x = 1; { int y = 2; } print y;");  // y out of scope
  expect_parity("if (false) { print nope; } print 1;"); // never executes
}

TEST(VmParity, GlobalsAreTemporal) {
  // Function bodies see globals through the call-time scope chain: a global
  // declared after the call site's execution point is invisible, the same
  // global declared before is visible.
  expect_parity(
      "int f() { return g; }\n"
      "int g = 41;\n"
      "print f() + 1;");
  expect_parity(
      "int f() { return g; }\n"
      "print f();\n"
      "int g = 41;");
}

TEST(VmParity, DuplicateParameterFailsAtCallTime) {
  const std::string decl = "int f(int a, int a) { return a; }\n";
  // Never called: no error, the body is dead.
  expect_parity(decl + "print 5;");
  // Called: the redeclaration diagnostic fires, in both engines.
  expect_parity(decl + "print f(1, 2);");
}

TEST(VmParity, CallDiagnosticsMatch) {
  expect_parity("print missing_fn(1);");
  expect_parity("int f(int a) { return a; } print f(1, 2);");
  expect_parity("int f(int a) { return a; } print f();");
  // Runaway recursion trips the call-depth cap identically.
  expect_parity("int f(int n) { return f(n + 1); } print f(0);");
}

TEST(VmParity, LoopBudgetMatches) {
  expect_parity("while (true) { }");
  expect_parity("int i = 0; while (i < 5) { i = i + 1; } print i;");
}

TEST(VmParity, IndexAssignmentDiagnosticsMatch) {
  expect_parity("int[] a = [1, 2, 3]; a[1] = 9; print a[1];");
  expect_parity("int[] a = [1, 2, 3]; a[7] = 9;");
  expect_parity("int[] a = [1, 2, 3]; a[1] += 9; print a[1];");
  expect_parity("int x = 1; x[0] = 2;");
}

TEST(VmParity, QuantumProgramsMatchBitForBit) {
  // Same Runtime, same RNG draw order: measured results must agree exactly.
  expect_parity("qubit q = |+>; print q; print q;");
  expect_parity("quint x = 5q; x += 3; print x;");
  expect_parity("qustring s = \"101\"; print s;");
}

// ---- corpus: deep nesting against both engines -----------------------------

TEST(VmCorpus, DeepNestingCorpusReplaysCleanlyInBothModes) {
  const std::filesystem::path dir = QUTES_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  const char* files[] = {"deep_nested_blocks.qut", "deep_nested_if.qut",
                         "deep_nested_parens.qut", "deep_not_chain.qut",
                         "long_flat_sum.qut"};
  for (const char* name : files) {
    const std::filesystem::path path = dir / name;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    for (const ExecMode mode : {ExecMode::Vm, ExecMode::Ast}) {
      try {
        (void)run_mode(source, mode, /*include_stdlib=*/true);
      } catch (const std::exception& e) {
        ADD_FAILURE() << name << " escaped with " << e.what();
      }
    }
  }
}

// ---- artifact: round trip, corruption, truncation --------------------------

TEST(Artifact, SerializeRoundTripIsByteIdentical) {
  const std::string source =
      "int f(int a, int b) { return a * b; }\n"
      "qubit q = |+>;\n"
      "foreach v in [1, 2, 3] { print f(v, 2); }\n"
      "print q;";
  const lang::Bytecode bc = lang::lower_source(source, /*include_stdlib=*/false);
  EXPECT_EQ(bc.source_hash, lang::fnv1a64(source));

  const std::vector<std::uint8_t> image = bc.serialize();
  const lang::Bytecode round = lang::Bytecode::deserialize(image.data(), image.size());
  EXPECT_EQ(round.serialize(), image);
  EXPECT_EQ(round.source_hash, bc.source_hash);
  EXPECT_EQ(round.disassemble(), bc.disassemble());
}

TEST(Artifact, SaveLoadRoundTripAndExecutes) {
  const std::string source = "int x = 6; print x * 7;";
  const lang::Bytecode bc = lang::lower_source(source, /*include_stdlib=*/false);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "qutes_test_artifact.qbc";
  bc.save(path.string());
  const lang::Bytecode loaded = lang::Bytecode::load(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.serialize(), bc.serialize());

  lang::Vm vm(loaded);
  vm.run();
  EXPECT_EQ(vm.runtime().captured_output(), "42\n");
}

TEST(Artifact, LoadOfMissingFileIsCleanError) {
  EXPECT_THROW((void)lang::Bytecode::load("/nonexistent/qutes.qbc"), LangError);
}

TEST(Artifact, EveryTruncationRejectsCleanly) {
  const lang::Bytecode bc = lang::lower_source(
      "int f(int a) { return a + 1; } print f(1);", /*include_stdlib=*/false);
  const std::vector<std::uint8_t> image = bc.serialize();
  for (std::size_t len = 0; len < image.size(); ++len) {
    try {
      (void)lang::Bytecode::deserialize(image.data(), len);
      ADD_FAILURE() << "truncation to " << len << " bytes was accepted";
    } catch (const LangError& e) {
      EXPECT_NE(std::string(e.what()).find("bytecode"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Artifact, MutatedArtifactsNeverCrashTheLoader) {
  // Loader fuzzing: the artifact is attacker-controlled input for a future
  // qutesd daemon, so a corrupted image must either still validate (the flip
  // hit a don't-care byte such as string content) or raise LangError —
  // never crash, loop, or escape with another exception type.
  const lang::Bytecode bc = lang::lower_source(
      "int f(int a, int b) { if (a < b) { return b; } return a; }\n"
      "int[] xs = [3, 1, 4, 1, 5];\n"
      "foreach x in xs { print f(x, 3); }",
      /*include_stdlib=*/false);
  const std::vector<std::uint8_t> image = bc.serialize();
  std::mt19937_64 rng(0xbadc0de);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> mutant = image;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t i = 0; i < flips; ++i) {
      mutant[rng() % mutant.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      const lang::Bytecode parsed =
          lang::Bytecode::deserialize(mutant.data(), mutant.size());
      // If it validated, it must also be safe to run: the VM's checked
      // dispatch turns residual nonsense into LangError, not memory
      // corruption.
      try {
        lang::Vm vm(parsed);
        vm.run();
      } catch (const LangError&) {
        // rejected at run time — fine
      }
    } catch (const LangError&) {
      // rejected at load time — fine
    } catch (const std::exception& e) {
      ADD_FAILURE() << "trial " << trial << " escaped with " << e.what();
    }
  }
}

TEST(Vm, SemanticallyNonsenseStreamsRaiseCleanErrors) {
  // Hand-built bytecode that validates structurally but underflows the
  // stack: the dispatch loop must raise LangError, not read garbage.
  lang::Bytecode bc;
  bc.strings = {""};
  bc.types.push_back(lang::QType::scalar(lang::TypeKind::Void));
  bc.locations.push_back(qutes::SourceLocation{});
  lang::Chunk main_chunk;
  main_chunk.code.push_back({lang::Op::Pop, 0, 0, 0, 0});
  bc.chunks.push_back(std::move(main_chunk));
  ASSERT_NO_THROW(bc.validate());
  lang::Vm vm(bc);
  try {
    vm.run();
    ADD_FAILURE() << "stack underflow was not detected";
  } catch (const LangError& e) {
    EXPECT_NE(std::string(e.what()).find("stack underflow"), std::string::npos)
        << e.what();
  }
}

// ---- exec-mode selection ---------------------------------------------------

TEST(ExecMode, EnvironmentVariableSelectsEngine) {
  // lang.vm_steps only advances when the dispatch loop runs, so it
  // distinguishes the engines even though their outputs are identical.
  const bool metrics_were_enabled = qutes::obs::metrics_enabled();
  qutes::obs::set_metrics_enabled(true);
  auto& steps =
      qutes::obs::metrics().counter(qutes::obs::names::kLangVmSteps);

  setenv("QUTES_EXEC_MODE", "ast", 1);
  const std::uint64_t before_ast = steps.value();
  (void)run_mode("print 1;", ExecMode::Default);
  EXPECT_EQ(steps.value(), before_ast) << "ast mode ran the VM";

  setenv("QUTES_EXEC_MODE", "vm", 1);
  const std::uint64_t before_vm = steps.value();
  (void)run_mode("print 1;", ExecMode::Default);
  EXPECT_GT(steps.value(), before_vm) << "vm mode did not run the VM";

  unsetenv("QUTES_EXEC_MODE");
  const std::uint64_t before_default = steps.value();
  (void)run_mode("print 1;", ExecMode::Default);
  EXPECT_GT(steps.value(), before_default) << "default mode is not the VM";

  qutes::obs::set_metrics_enabled(metrics_were_enabled);
}

TEST(ExecMode, DebugTraceForcesTreeWalk) {
  // Statement tracing is per AST node; requesting it must select the
  // tree-walk even when the VM is asked for explicitly.
  const bool metrics_were_enabled = qutes::obs::metrics_enabled();
  qutes::obs::set_metrics_enabled(true);
  auto& steps =
      qutes::obs::metrics().counter(qutes::obs::names::kLangVmSteps);
  std::ostringstream trace;
  qutes::RunConfig config;
  config.include_stdlib = false;
  config.exec_mode = ExecMode::Vm;
  config.debug_trace = &trace;
  const std::uint64_t before = steps.value();
  (void)lang::run_source("print 1;", config);
  EXPECT_EQ(steps.value(), before);
  EXPECT_FALSE(trace.str().empty());
  qutes::obs::set_metrics_enabled(metrics_were_enabled);
}
