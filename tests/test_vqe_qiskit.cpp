// VQE driver tests (Hamiltonian algebra, exact diagonalization oracle,
// optimizer convergence) and the Qiskit Python exporter.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/algorithms/variational.hpp"
#include "qutes/algorithms/vqe.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/qiskit_export.hpp"
#include "qutes/common/error.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

// ---- Hamiltonian -----------------------------------------------------------------

TEST(Hamiltonian, EnergyOfBasisStates) {
  const Hamiltonian h{{{1.0, "ZZ"}, {0.5, "ZI"}}};
  sim::StateVector zero(2);                  // |00>: <ZZ>=1, <ZI>=1
  EXPECT_NEAR(h.energy(zero), 1.5, 1e-12);
  sim::StateVector one(2);
  one.apply_1q(sim::gates::X(), 0);          // |01>: <ZZ>=-1, <ZI>=+1 (Z on q1)
  EXPECT_NEAR(h.energy(one), -1.0 + 0.5, 1e-12);
}

TEST(Hamiltonian, ExactGroundEnergyAgainstKnownSpectra) {
  // -Z: ground -1 at |1>.
  const Hamiltonian minus_z{{{-1.0, "Z"}}};
  EXPECT_NEAR(minus_z.exact_ground_energy(1), -1.0, 1e-9);
  // -X: same spectrum {-1, +1}, ground at |+>.
  const Hamiltonian minus_x{{{-1.0, "X"}}};
  EXPECT_NEAR(minus_x.exact_ground_energy(1), -1.0, 1e-9);
  // -XX - ZZ on 2 qubits: ground -2 (the Bell state).
  const Hamiltonian xx_zz{{{-1.0, "XX"}, {-1.0, "ZZ"}}};
  EXPECT_NEAR(xx_zz.exact_ground_energy(2), -2.0, 1e-8);
  // Transverse-field pair: the field can only lower the energy below the
  // classical -1; the variational test below cross-checks the exact value.
  const Hamiltonian tf{{{-1.0, "ZZ"}, {-0.5, "XI"}, {-0.5, "IX"}}};
  EXPECT_LT(tf.exact_ground_energy(2), -1.0);
}

TEST(Hamiltonian, TermWidthValidation) {
  const Hamiltonian h{{{1.0, "Z"}}};
  EXPECT_THROW((void)h.exact_ground_energy(2), Error);
}

// ---- ansatz ------------------------------------------------------------------------

TEST(Ansatz, ParameterCountAndShape) {
  const std::vector<double> params(3 * 2, 0.25);
  const auto c = build_ry_ansatz(3, 1, params);
  EXPECT_EQ(c.num_qubits(), 3u);
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("ry"), 6u);
  EXPECT_EQ(counts.at("cx"), 2u);
  const std::vector<double> wrong(5, 0.0);
  EXPECT_THROW((void)build_ry_ansatz(3, 1, wrong), Error);
}

TEST(Ansatz, ZeroParametersIsIdentityOnZero) {
  const std::vector<double> params(4, 0.0);
  const auto c = build_ry_ansatz(2, 1, params);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  EXPECT_NEAR(std::norm(traj.state.amplitude(0)), 1.0, 1e-12);
}

// ---- VQE convergence ------------------------------------------------------------------
// The ground-state searches run through the unified variational driver:
// symbolic ansatz, parameter-shift gradients, Adam.

TEST(Vqe, FindsBellGroundStateOfXXZZ) {
  VariationalProblem problem;
  problem.ansatz = build_ry_ansatz(2, 1);
  problem.hamiltonian = Hamiltonian{{{-1.0, "XX"}, {-1.0, "ZZ"}}};
  problem.initial_parameters = {0.3, -0.2, 0.5, 0.1};
  MinimizeOptions options;
  options.max_iterations = 400;
  const MinimizeResult result = minimize(problem, options);
  EXPECT_NEAR(result.value, -2.0, 0.01);
  EXPECT_GT(result.evaluations, 10u);
}

TEST(Vqe, MatchesExactDiagonalizationOnTransverseField) {
  const Hamiltonian h{{{-1.0, "ZZ"}, {-0.5, "XI"}, {-0.5, "IX"}}};
  const double exact = h.exact_ground_energy(2);
  VariationalProblem problem;
  problem.ansatz = build_ry_ansatz(2, 2);
  problem.hamiltonian = h;
  problem.initial_parameters = {0.4, -0.3, 0.2, 0.6, -0.1, 0.5};
  MinimizeOptions options;
  options.max_iterations = 500;
  const MinimizeResult result = minimize(problem, options);
  EXPECT_NEAR(result.value, exact, 0.02);
  EXPECT_GE(result.value, exact - 1e-6);  // variational bound
}

TEST(Vqe, SingleQubitFieldIsTrivial) {
  VariationalProblem problem;
  problem.ansatz = build_ry_ansatz(1, 1);
  problem.hamiltonian = Hamiltonian{{{1.0, "Z"}}};  // ground: |1>, energy -1
  problem.initial_parameters = {0.4, 0.2};
  const MinimizeResult result = minimize(problem);
  EXPECT_NEAR(result.value, -1.0, 1e-3);
}

TEST(Vqe, DeterministicGivenInitialPoint) {
  // minimize() has no internal randomness: same starting point, same run.
  VariationalProblem problem;
  problem.ansatz = build_ry_ansatz(2, 1);
  problem.hamiltonian = Hamiltonian{{{-1.0, "ZZ"}}};
  problem.initial_parameters = {0.2, -0.4, 0.1, 0.3};
  MinimizeOptions options;
  options.max_iterations = 60;
  const MinimizeResult a = minimize(problem, options);
  const MinimizeResult b = minimize(problem, options);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.parameters, b.parameters);
}

// The deprecated wrapper must keep its old contract (random init from the
// seed, VqeResult shape) while delegating to minimize() underneath.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Vqe, DeprecatedRunVqeWrapperStillConverges) {
  const Hamiltonian h{{{-1.0, "XX"}, {-1.0, "ZZ"}}};
  const VqeResult result = run_vqe(h, 2, {.layers = 1, .max_sweeps = 80,
                                          .initial_step = 0.7, .tolerance = 1e-6,
                                          .seed = 3});
  EXPECT_NEAR(result.energy, -2.0, 0.01);
  EXPECT_EQ(result.parameters.size(), 4u);

  const VqeResult again = run_vqe(h, 2, {.layers = 1, .max_sweeps = 80,
                                         .initial_step = 0.7, .tolerance = 1e-6,
                                         .seed = 3});
  EXPECT_EQ(result.energy, again.energy);  // still deterministic given seed
}
#pragma GCC diagnostic pop

// ---- Qiskit export ------------------------------------------------------------------

TEST(QiskitExport, EmitsRunnablePythonShape) {
  circ::QuantumCircuit c;
  c.add_register("data", 2);
  c.add_classical_register("out", 2);
  c.h(0).cx(0, 1).rz(M_PI / 4, 1).measure(0, 0).measure(1, 1);
  const std::string py = circ::qiskit::export_circuit(c);
  EXPECT_NE(py.find("from qiskit import QuantumCircuit"), std::string::npos);
  EXPECT_NE(py.find("q_data = QuantumRegister(2, \"data\")"), std::string::npos);
  EXPECT_NE(py.find("c_out = ClassicalRegister(2, \"out\")"), std::string::npos);
  EXPECT_NE(py.find("qc = QuantumCircuit(q_data, c_out)"), std::string::npos);
  EXPECT_NE(py.find("qc.h(q_data[0])"), std::string::npos);
  EXPECT_NE(py.find("qc.cx(q_data[0], q_data[1])"), std::string::npos);
  EXPECT_NE(py.find("qc.rz(0.78539816339744828, q_data[1])"), std::string::npos);
  EXPECT_NE(py.find("qc.measure(q_data[0], c_out[0])"), std::string::npos);
}

TEST(QiskitExport, ConditionsBecomeCIf) {
  circ::QuantumCircuit c(1, 1);
  c.measure(0, 0);
  c.x(0).c_if(0, 1);
  const std::string py = circ::qiskit::export_circuit(c);
  EXPECT_NE(py.find("qc.x(q_q[0]).c_if(c_c[0], 1)"), std::string::npos);
}

TEST(QiskitExport, MultiControlledGetLowered) {
  circ::QuantumCircuit c(5);
  const std::size_t controls[4] = {0, 1, 2, 3};
  c.mcx(controls, 4);
  const std::string py = circ::qiskit::export_circuit(c);
  EXPECT_EQ(py.find("mcx"), std::string::npos);
  EXPECT_NE(py.find("qc.ccx("), std::string::npos);
  EXPECT_NE(py.find("QuantumRegister(2, \"anc\")"), std::string::npos);
}

TEST(QiskitExport, WholeDslProgramExports) {
  qutes::RunConfig options;
  options.seed = 2;
  const auto result = qutes::lang::run_source(
      "quint<3> x = 5q; hadamard x; int v = x;", options);
  const std::string py = circ::qiskit::export_circuit(result.circuit);
  EXPECT_NE(py.find("QuantumRegister(3, \"x\")"), std::string::npos);
  EXPECT_NE(py.find("qc.measure("), std::string::npos);
}

}  // namespace
