// Unit + property tests for the gate matrices: unitarity, algebraic
// identities (HZH = X, S^2 = Z, T^2 = S, ...), and parameterized rotation
// properties.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/common/error.hpp"
#include "qutes/sim/matrix.hpp"

namespace {

using namespace qutes::sim;
using namespace qutes::sim::gates;

constexpr double kTol = 1e-12;

TEST(Matrix, StandardGatesAreUnitary) {
  for (const Matrix2& u : {I(), X(), Y(), Z(), H(), S(), Sdg(), T(), Tdg(), SX()}) {
    EXPECT_TRUE(u.is_unitary(kTol));
  }
}

class RotationUnitarity : public ::testing::TestWithParam<double> {};

TEST_P(RotationUnitarity, AllRotationsUnitary) {
  const double theta = GetParam();
  EXPECT_TRUE(RX(theta).is_unitary(kTol));
  EXPECT_TRUE(RY(theta).is_unitary(kTol));
  EXPECT_TRUE(RZ(theta).is_unitary(kTol));
  EXPECT_TRUE(P(theta).is_unitary(kTol));
  EXPECT_TRUE(U(theta, theta / 3, -theta).is_unitary(kTol));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RotationUnitarity,
                         ::testing::Values(0.0, 0.1, M_PI / 4, M_PI / 2, M_PI,
                                           3 * M_PI / 2, 2 * M_PI, -0.7, 5.13));

TEST(Matrix, PauliAlgebra) {
  // X^2 = Y^2 = Z^2 = I.
  EXPECT_LT((X() * X()).distance(I()), kTol);
  EXPECT_LT((Y() * Y()).distance(I()), kTol);
  EXPECT_LT((Z() * Z()).distance(I()), kTol);
}

TEST(Matrix, HadamardConjugation) {
  // H Z H = X, H X H = Z.
  EXPECT_LT((H() * Z() * H()).distance(X()), kTol);
  EXPECT_LT((H() * X() * H()).distance(Z()), kTol);
}

TEST(Matrix, PhaseTower) {
  // T^2 = S, S^2 = Z.
  EXPECT_LT((T() * T()).distance(S()), kTol);
  EXPECT_LT((S() * S()).distance(Z()), kTol);
}

TEST(Matrix, SxSquaredIsX) {
  EXPECT_LT((SX() * SX()).distance(X()), kTol);
}

TEST(Matrix, AdjointsInvert) {
  for (const Matrix2& u : {H(), S(), T(), SX(), RX(0.3), RY(1.1), RZ(-2.0), P(0.9)}) {
    EXPECT_LT((u * u.adjoint()).distance(I()), kTol);
    EXPECT_LT((u.adjoint() * u).distance(I()), kTol);
  }
}

TEST(Matrix, RotationComposition) {
  // RZ(a) RZ(b) = RZ(a + b).
  EXPECT_LT((RZ(0.4) * RZ(0.6)).distance(RZ(1.0)), kTol);
  EXPECT_LT((RY(0.25) * RY(0.5)).distance(RY(0.75)), kTol);
}

TEST(Matrix, UGateSpecialCases) {
  // U(pi/2, 0, pi) = H; U(pi, 0, pi) = X.
  EXPECT_LT(U(M_PI / 2, 0, M_PI).distance(H()), kTol);
  EXPECT_LT(U(M_PI, 0, M_PI).distance(X()), kTol);
  // U(0, 0, lambda) = P(lambda).
  EXPECT_LT(U(0, 0, 0.7).distance(P(0.7)), kTol);
}

TEST(Matrix4, KronMatchesManual) {
  // kron(Z, X): |q1 q0>, X acts on q0, Z on q1.
  const Matrix4 zx = kron(Z(), X());
  EXPECT_TRUE(zx.is_unitary(kTol));
  // Basis |00> -> X on q0 gives |01>, Z phase on q1=0 is +1.
  EXPECT_NEAR(std::abs(zx(1, 0) - cplx{1.0}), 0.0, kTol);
  // Basis |10> -> |11> with sign -1 from Z.
  EXPECT_NEAR(std::abs(zx(3, 2) - cplx{-1.0}), 0.0, kTol);
}

TEST(Matrix4, ProductAndAdjoint) {
  const Matrix4 hh = kron(H(), H());
  EXPECT_TRUE(hh.is_unitary(kTol));
  const Matrix4 prod = hh * hh.adjoint();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const cplx expect = r == c ? cplx{1.0} : cplx{0.0};
      EXPECT_NEAR(std::abs(prod(r, c) - expect), 0.0, kTol);
    }
  }
}

TEST(MatrixN, IdentityAndLifts) {
  const MatrixN id3 = MatrixN::identity(3);
  EXPECT_EQ(id3.num_qubits(), 3u);
  EXPECT_EQ(id3.dim(), 8u);
  EXPECT_TRUE(id3.is_unitary(kTol));
  EXPECT_LT(MatrixN::from_1q(H()).distance(MatrixN::from_1q(H())), kTol);
  const MatrixN zx = MatrixN::from_2q(kron(Z(), X()));
  EXPECT_EQ(zx.num_qubits(), 2u);
  EXPECT_NEAR(std::abs(zx(1, 0) - cplx{1.0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(zx(3, 2) - cplx{-1.0}), 0.0, kTol);
}

TEST(MatrixN, EmbeddedMatchesKron) {
  // Embedding a 1q gate at local position p of a 2q block must match the
  // explicit kron: position 0 -> kron(I, U), position 1 -> kron(U, I).
  const MatrixN u = MatrixN::from_1q(H());
  const std::size_t at0[1] = {0};
  const std::size_t at1[1] = {1};
  EXPECT_LT(u.embedded(2, at0).distance(MatrixN::from_2q(kron(I(), H()))),
            kTol);
  EXPECT_LT(u.embedded(2, at1).distance(MatrixN::from_2q(kron(H(), I()))),
            kTol);
  // Identity embedding (same width, in-order positions) is a no-op.
  const MatrixN zx = MatrixN::from_2q(kron(Z(), X()));
  const std::size_t direct[2] = {0, 1};
  EXPECT_LT(zx.embedded(2, direct).distance(zx), kTol);
  // Reversed positions swap which wire each factor acts on.
  const std::size_t swapped[2] = {1, 0};
  EXPECT_LT(zx.embedded(2, swapped).distance(MatrixN::from_2q(kron(X(), Z()))),
            kTol);
}

TEST(MatrixN, ComposeAndAdjointRoundTrip) {
  const MatrixN h = MatrixN::from_1q(H());
  const std::size_t at0[1] = {0};
  const std::size_t at1[1] = {1};
  const MatrixN big =
      h.embedded(3, at1) * MatrixN::from_1q(RX(0.3)).embedded(3, at0);
  EXPECT_TRUE(big.is_unitary(kTol));
  EXPECT_LT((big * big.adjoint()).distance(MatrixN::identity(3)), kTol);
}

TEST(MatrixN, EmbeddedRejectsBadArguments) {
  const MatrixN u = MatrixN::from_1q(H());
  const std::size_t out[1] = {3};
  EXPECT_THROW(u.embedded(2, out), qutes::InvalidArgument);
  const std::size_t ok[1] = {0};
  EXPECT_THROW(u.embedded(MatrixN::kMaxQubits + 1, ok),
               qutes::InvalidArgument);
}

}  // namespace
