// Oracle constructions, Deutsch-Jozsa (E5), Bernstein-Vazirani, phase
// estimation, and teleportation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/algorithms/bernstein_vazirani.hpp"
#include "qutes/algorithms/deutsch_jozsa.hpp"
#include "qutes/algorithms/oracles.hpp"
#include "qutes/algorithms/phase_estimation.hpp"
#include "qutes/algorithms/teleport.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

// ---- oracles ----------------------------------------------------------------

TEST(Oracles, PhaseOracleFlipsExactlyTheMarkedState) {
  circ::QuantumCircuit c(3);
  std::vector<std::size_t> qubits = {0, 1, 2};
  for (std::size_t q : qubits) c.h(q);
  append_phase_oracle_value(c, qubits, 5);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const double expected_sign = i == 5 ? -1.0 : 1.0;
    EXPECT_NEAR(traj.state.amplitude(i).real(), expected_sign / std::sqrt(8.0), 1e-9)
        << "i=" << i;
  }
}

TEST(Oracles, PhaseOracleSelfInverse) {
  circ::QuantumCircuit c(3);
  std::vector<std::size_t> qubits = {0, 1, 2};
  for (std::size_t q : qubits) c.ry(0.3 + 0.2 * static_cast<double>(q), q);
  circ::QuantumCircuit ref = c;
  append_phase_oracle_value(c, qubits, 6);
  append_phase_oracle_value(c, qubits, 6);
  circ::Executor ex({.shots = 1, .seed = 1});
  EXPECT_NEAR(ex.run_single(c).state.fidelity(ex.run_single(ref).state), 1.0, 1e-9);
}

TEST(Oracles, PhaseOracleValidation) {
  circ::QuantumCircuit c(2);
  std::vector<std::size_t> qubits = {0, 1};
  EXPECT_THROW(append_phase_oracle_value(c, qubits, 4), Error);  // doesn't fit
}

TEST(Oracles, TruthTableOracleMatchesFunction) {
  // f over 3 bits with an arbitrary table; check the bit oracle computes f
  // for every basis input.
  const std::vector<bool> table = {false, true, true, false, true, false, false, true};
  for (std::uint64_t x = 0; x < 8; ++x) {
    circ::QuantumCircuit c(4);
    std::vector<std::size_t> inputs = {0, 1, 2};
    for (std::size_t q = 0; q < 3; ++q) {
      if (test_bit(x, q)) c.x(q);
    }
    append_truth_table_bit_oracle(c, inputs, 3, table);
    circ::Executor ex({.shots = 1, .seed = 1});
    const auto traj = ex.run_single(c);
    const double p_out = traj.state.probability_one(3);
    EXPECT_NEAR(p_out, table[x] ? 1.0 : 0.0, 1e-9) << "x=" << x;
  }
}

TEST(Oracles, RandomBalancedTableIsBalancedAndReproducible) {
  for (std::size_t n : {2u, 3u, 4u, 6u}) {
    const auto table = random_balanced_truth_table(n, 99);
    std::size_t ones = 0;
    for (bool b : table) ones += b;
    EXPECT_EQ(ones, table.size() / 2) << "n=" << n;
    EXPECT_EQ(table, random_balanced_truth_table(n, 99));
    EXPECT_NE(table, random_balanced_truth_table(n, 100));
  }
}

// ---- Deutsch-Jozsa ------------------------------------------------------------

class DjConstant : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DjConstant, DetectsConstant) {
  const std::size_t n = GetParam();
  EXPECT_TRUE(run_deutsch_jozsa(n, DjOracle::constant(false)).constant);
  EXPECT_TRUE(run_deutsch_jozsa(n, DjOracle::constant(true)).constant);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DjConstant, ::testing::Values(1u, 2u, 4u, 8u, 12u));

class DjBalanced : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DjBalanced, DetectsBalancedParity) {
  const std::uint64_t mask = GetParam();
  const std::size_t n = 5;
  const DjResult result = run_deutsch_jozsa(n, DjOracle::balanced(mask));
  EXPECT_FALSE(result.constant);
  // For parity oracles, the measured register IS the mask.
  EXPECT_EQ(result.measured, mask);
}

INSTANTIATE_TEST_SUITE_P(Masks, DjBalanced,
                         ::testing::Values(1u, 2u, 3u, 7u, 21u, 31u));

TEST(DeutschJozsa, RandomTruthTableBalanced) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto table = random_balanced_truth_table(4, seed);
    const DjResult result = run_deutsch_jozsa(4, DjOracle::table(table), seed);
    EXPECT_FALSE(result.constant) << "seed=" << seed;
  }
}

TEST(DeutschJozsa, ClassicalQueryCount) {
  // Constant oracle: the deterministic classical strategy needs 2^{n-1}+1.
  EXPECT_EQ(classical_deutsch_jozsa_queries(4, DjOracle::constant(false)), 9u);
  EXPECT_EQ(classical_deutsch_jozsa_queries(6, DjOracle::constant(true)), 33u);
  // A balanced oracle that differs early exits quickly.
  EXPECT_LE(classical_deutsch_jozsa_queries(6, DjOracle::balanced(1)), 3u);
}

TEST(DeutschJozsa, Validation) {
  EXPECT_THROW((void)build_deutsch_jozsa_circuit(0, DjOracle::constant(false)), Error);
  EXPECT_THROW((void)build_deutsch_jozsa_circuit(3, DjOracle::balanced(0)), Error);
  EXPECT_THROW((void)build_deutsch_jozsa_circuit(3, DjOracle::table({true})), Error);
}

// ---- Bernstein-Vazirani ---------------------------------------------------------

class BvSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BvSweep, RecoversSecretInOneQuery) {
  const std::uint64_t secret = GetParam();
  EXPECT_EQ(run_bernstein_vazirani(6, secret), secret);
}

INSTANTIATE_TEST_SUITE_P(Secrets, BvSweep,
                         ::testing::Values(0u, 1u, 5u, 21u, 42u, 63u));

TEST(BernsteinVazirani, Validation) {
  EXPECT_THROW((void)build_bernstein_vazirani_circuit(0, 0), Error);
  EXPECT_THROW((void)build_bernstein_vazirani_circuit(3, 8), Error);
}

// ---- phase estimation -----------------------------------------------------------

class QpeExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QpeExact, ExactDyadicPhases) {
  // phi = k/16 is exactly representable with 4 counting bits.
  const std::uint64_t k = GetParam();
  const double phi = static_cast<double>(k) / 16.0;
  const PhaseEstimate est = run_phase_estimation(4, phi);
  EXPECT_EQ(est.raw, k);
  EXPECT_NEAR(est.phi, phi, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DyadicPhases, QpeExact,
                         ::testing::Values(0u, 1u, 3u, 7u, 8u, 11u, 15u));

TEST(PhaseEstimation, NonDyadicPhaseWithinResolution) {
  const double phi = 0.3;
  const PhaseEstimate est = run_phase_estimation(7, phi, 5);
  EXPECT_NEAR(est.phi, phi, 1.0 / 128.0 + 1e-9);
}

// ---- teleportation ---------------------------------------------------------------

class TeleportSweep : public ::testing::TestWithParam<int> {};

TEST_P(TeleportSweep, UnitFidelityForArbitraryStates) {
  const double theta = 0.3 + 0.5 * GetParam();
  const double phi = 0.2 * GetParam();
  const double lambda = -0.4 * GetParam();
  // Try several seeds: every Bell-measurement branch must teleport exactly.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_NEAR(run_teleport_fidelity(theta, phi, lambda, seed), 1.0, 1e-9)
        << "theta=" << theta << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(States, TeleportSweep, ::testing::Range(0, 6));

}  // namespace
