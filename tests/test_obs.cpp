// Observability tests: span recording and nesting (including the OpenMP
// shot loop), disabled-mode inertness, Chrome-trace / metrics JSON schema,
// counter determinism across identical runs, counters matching actual
// instruction counts, and RunConfig validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "qutes/circuit/circuit.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/run_config.hpp"

namespace circ = qutes::circ;
namespace obs = qutes::obs;
using qutes::CircuitError;

// Global allocation counter (test-binary-wide operator new replacement) so
// the disabled-mode test can assert the hot path literally never allocates.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as mismatched even
// though the paired operator new above allocates with malloc.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
// The nothrow pair must be replaced too: the default (or sanitizer) nothrow
// new does not forward to the replaced ordinary new, so anything allocated
// through it (e.g. std::stable_sort's temporary buffer) would hit the free()
// above as an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace {

/// Reset every global obs switch and buffer so tests cannot leak into each
/// other (the registry is process-wide by design).
struct ObsTest : ::testing::Test {
  void SetUp() override { scrub(); }
  void TearDown() override { scrub(); }
  static void scrub() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::clear_trace();
    obs::reset_metrics();
  }
};

using TraceTest = ObsTest;
using MetricsTest = ObsTest;
using RunConfigTest = ObsTest;

circ::QuantumCircuit ghz(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (std::size_t q = 0; q < n; ++q) c.measure(q, q);
  return c;
}

/// A circuit with a mid-circuit measurement feeding a condition: forces the
/// executor off the static fast path and into per-shot trajectories (the
/// OpenMP loop).
circ::QuantumCircuit dynamic_circuit() {
  circ::QuantumCircuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.x(1).c_if(0, 1);
  c.measure(1, 1);
  return c;
}

/// Events of one thread must form a laminar family: any two spans either
/// nest or are disjoint. Checked with an interval stack over start-sorted
/// events (eps absorbs double rounding of the ns clock).
void expect_well_nested(std::vector<obs::TraceEvent> events) {
  constexpr double eps = 0.5;  // microseconds
  std::stable_sort(events.begin(), events.end(),
                   [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents first on ties
                   });
  std::vector<double> open_ends;
  for (const auto& e : events) {
    ASSERT_GE(e.dur_us, 0.0) << e.name;
    while (!open_ends.empty() && open_ends.back() <= e.ts_us + eps) {
      open_ends.pop_back();
    }
    if (!open_ends.empty()) {
      EXPECT_LE(e.ts_us + e.dur_us, open_ends.back() + eps)
          << e.name << " straddles an enclosing span";
    }
    open_ends.push_back(e.ts_us + e.dur_us);
  }
}

}  // namespace

TEST_F(TraceTest, NestedSpansRecordWithNesting) {
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
    }
  }
  const auto events = obs::collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // collect_trace sorts by start time: outer began first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us + 0.5);
  expect_well_nested(events);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    obs::Span s("quiet");
    obs::Span t(std::string("also-quiet"));
    EXPECT_GE(s.elapsed_ms(), 0.0);  // timing still works when disabled
    (void)t;
  }
  EXPECT_TRUE(obs::collect_trace().empty());
}

TEST_F(TraceTest, DisabledHotPathNeverAllocates) {
  // Resolve the instrument before the measured window: lookup allocates by
  // design (once), per-event updates must not.
  obs::Counter& counter = obs::metrics().counter("test.hot");
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("hot.literal");
    counter.add(1);
    (void)span.elapsed_ms();
  }
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "disabled spans/counters must be allocation-free";
}

TEST_F(TraceTest, EnablementIsCapturedAtConstruction) {
  obs::set_tracing_enabled(true);
  {
    obs::Span s("started-enabled");
    obs::set_tracing_enabled(false);
  }  // still recorded: the span saw tracing on when it was constructed
  const auto events = obs::collect_trace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "started-enabled");
}

TEST_F(TraceTest, ThreadsGetDistinctDenseTids) {
  obs::set_tracing_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] { obs::Span s("worker"); });
  }
  for (auto& t : pool) t.join();
  const auto events = obs::collect_trace();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  std::vector<int> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each thread must own a distinct tid";
  EXPECT_GE(tids.front(), 0);
}

TEST_F(TraceTest, OmpShotLoopSpansAreWellFormedPerThread) {
  obs::set_tracing_enabled(true);
  qutes::RunConfig config;
  config.shots = 64;
  config.seed = 9;
  const auto result = circ::Executor(config).run(dynamic_circuit());
  EXPECT_FALSE(result.fast_path);

  const auto events = obs::collect_trace();
  std::map<int, std::vector<obs::TraceEvent>> by_tid;
  std::size_t shot_spans = 0;
  for (const auto& e : events) {
    by_tid[e.tid].push_back(e);
    shot_spans += e.name == "sv.shot";
  }
  // One span per trajectory, spread over however many threads ran them.
  EXPECT_EQ(shot_spans, 64u);
  for (auto& [tid, thread_events] : by_tid) {
    expect_well_nested(std::move(thread_events));
  }
}

TEST_F(TraceTest, ChromeExportMatchesSchema) {
  obs::set_tracing_enabled(true);
  {
    obs::Span s("he said \"hi\"\\");
  }
  const std::string json = obs::export_chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Quotes and backslashes in span names must be escaped, not emitted raw.
  EXPECT_NE(json.find("he said \\\"hi\\\"\\\\"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(TraceTest, ClearTraceDropsEvents) {
  obs::set_tracing_enabled(true);
  {
    obs::Span s("dropped");
  }
  obs::clear_trace();
  EXPECT_TRUE(obs::collect_trace().empty());
  {
    obs::Span s("kept");
  }  // buffers survive a clear: new spans still record
  EXPECT_EQ(obs::collect_trace().size(), 1u);
}

TEST_F(MetricsTest, DisabledInstrumentsDoNotAccumulate) {
  obs::Counter& c = obs::metrics().counter("test.disabled");
  obs::Gauge& g = obs::metrics().gauge("test.disabled_gauge");
  c.add(5);
  g.set(3.0);
  g.set_max(7.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, InstrumentsRecordWhenEnabled) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::metrics().counter("test.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  obs::Gauge& g = obs::metrics().gauge("test.gauge");
  g.set_max(2.0);
  g.set_max(9.0);
  g.set_max(4.0);  // lower than the high-water mark: ignored
  EXPECT_EQ(g.value(), 9.0);

  obs::Histogram& h = obs::metrics().histogram("test.hist");
  h.record(2.0);
  h.record(-1.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 6.0);
  EXPECT_EQ(h.min(), -1.0);
  EXPECT_EQ(h.max(), 5.0);
  EXPECT_EQ(h.mean(), 2.0);
}

TEST_F(MetricsTest, ResetZeroesButKeepsReferencesValid) {
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::metrics().counter("test.reset");
  c.add(3);
  obs::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the pre-reset reference still points at the live instrument
  EXPECT_EQ(obs::metrics().counter("test.reset").value(), 2u);
}

TEST_F(MetricsTest, ExecutorCountersAreDeterministicAcrossRuns) {
  obs::set_metrics_enabled(true);
  qutes::RunConfig config;
  config.shots = 128;
  config.seed = 5;

  (void)circ::Executor(config).run(ghz(5));
  const auto first = obs::metrics().snapshot();
  obs::reset_metrics();
  (void)circ::Executor(config).run(ghz(5));
  const auto second = obs::metrics().snapshot();

  EXPECT_EQ(first.counters, second.counters);
  ASSERT_TRUE(first.counters.count("executor.shots"));
  EXPECT_EQ(first.counters.at("executor.shots"), 128u);
}

TEST_F(MetricsTest, GateCounterMatchesInstructionCount) {
  obs::set_metrics_enabled(true);
  qutes::RunConfig config;
  config.shots = 32;
  config.seed = 3;
  config.backend.max_fused_qubits = 1;  // no fusion: one metric tick per gate
  const auto result = circ::Executor(config).run(ghz(4));
  EXPECT_TRUE(result.fast_path);
  const auto snap = obs::metrics().snapshot();
  // GHZ(4) = 1 H + 3 CX unitaries; measurements are not gate applications.
  EXPECT_EQ(snap.counters.at("sv.gates_applied"), 4u);
  EXPECT_EQ(snap.counters.at("executor.runs"), 1u);
  EXPECT_EQ(snap.counters.at("executor.shots"), 32u);
  // One statevector of 2^4 amplitudes at 16 bytes each.
  EXPECT_EQ(snap.gauges.at("sv.peak_bytes"), 16.0 * 16.0);
}

TEST_F(MetricsTest, JsonExportMatchesSchema) {
  obs::set_metrics_enabled(true);
  obs::metrics().counter("test.json").add(7);
  obs::metrics().histogram("test.jhist").record(1.5);
  const std::string json = obs::export_metrics_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json\":7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST_F(MetricsTest, ReportOmitsIdleInstruments) {
  obs::set_metrics_enabled(true);
  obs::metrics().counter("test.live").add(1);
  (void)obs::metrics().counter("test.idle");  // registered, never incremented
  const std::string report = obs::format_metrics_report();
  EXPECT_NE(report.find("test.live"), std::string::npos);
  EXPECT_EQ(report.find("test.idle"), std::string::npos);
}

TEST_F(RunConfigTest, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(qutes::RunConfig{}.validate());
}

TEST_F(RunConfigTest, ValidateRejectsUnknownBackend) {
  qutes::RunConfig config;
  config.backend.name = "qpu";
  try {
    config.validate();
    FAIL() << "expected CircuitError";
  } catch (const CircuitError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown backend \"qpu\""), std::string::npos);
    EXPECT_NE(what.find("statevector"), std::string::npos);  // lists the registry
  }
}

TEST_F(RunConfigTest, ValidateRejectsDegenerateLimits) {
  qutes::RunConfig config;
  config.backend.max_bond_dim = 0;
  EXPECT_THROW(config.validate(), CircuitError);

  qutes::RunConfig fused;
  fused.backend.max_fused_qubits = 0;
  EXPECT_THROW(fused.validate(), CircuitError);

  qutes::RunConfig trunc;
  trunc.backend.truncation_threshold = -1e-9;
  EXPECT_THROW(trunc.validate(), CircuitError);
}

TEST_F(RunConfigTest, ExecutorValidatesItsConfig) {
  qutes::RunConfig config;
  config.backend.name = "qpu";
  EXPECT_THROW((void)circ::Executor(config).run(ghz(2)), CircuitError);
}
