// Tests for the Executor: static fast path vs dynamic trajectories,
// mid-circuit measurement, classical conditioning, noise plumbing, and
// counts statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

qutes::RunConfig opts(std::size_t shots, std::uint64_t seed) {
  qutes::RunConfig o;
  o.shots = shots;
  o.seed = seed;
  return o;
}

TEST(Executor, DeterministicCircuit) {
  QuantumCircuit c(2, 2);
  c.x(0).measure(0, 0).measure(1, 1);
  const auto result = Executor(opts(100, 1)).run(c);
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_EQ(result.counts.begin()->first, "01");  // clbit1=0, clbit0=1
  EXPECT_EQ(result.counts.begin()->second, 100u);
}

TEST(Executor, StaticCircuitTakesFastPath) {
  QuantumCircuit c(1, 1);
  c.h(0).measure(0, 0);
  const auto result = Executor(opts(1000, 2)).run(c);
  EXPECT_TRUE(result.fast_path);
  EXPECT_EQ(result.trajectories, 1u);
}

TEST(Executor, ConditionedCircuitUsesTrajectories) {
  QuantumCircuit c(2, 2);
  c.h(0).measure(0, 0);
  c.x(1).c_if(0, 1);
  c.measure(1, 1);
  const auto result = Executor(opts(500, 3)).run(c);
  EXPECT_FALSE(result.fast_path);
  EXPECT_EQ(result.trajectories, 500u);
  // Teleported correlation: clbits must be "00" or "11".
  for (const auto& [key, n] : result.counts) {
    EXPECT_TRUE(key == "00" || key == "11") << key << " x" << n;
  }
}

TEST(Executor, MeasuredThenReusedQubitIsDynamic) {
  QuantumCircuit c(1, 2);
  c.h(0).measure(0, 0).h(0).measure(0, 1);
  EXPECT_FALSE(Executor::is_static(c));
}

TEST(Executor, BellCountsRoughlyBalanced) {
  QuantumCircuit c(2, 2);
  c.h(0).cx(0, 1);
  const std::size_t qs[2] = {0, 1};
  const std::size_t cs[2] = {0, 1};
  c.measure(qs, cs);
  const auto result = Executor(opts(10000, 4)).run(c);
  ASSERT_EQ(result.counts.size(), 2u);
  EXPECT_TRUE(result.counts.count("00"));
  EXPECT_TRUE(result.counts.count("11"));
  const double p00 =
      static_cast<double>(result.counts.at("00")) / 10000.0;
  EXPECT_NEAR(p00, 0.5, 0.03);
}

TEST(Executor, SeedReproducibility) {
  QuantumCircuit c(3, 3);
  for (std::size_t q = 0; q < 3; ++q) c.h(q);
  c.measure_all();
  const auto a = Executor(opts(200, 42)).run(c);
  const auto b = Executor(opts(200, 42)).run(c);
  EXPECT_EQ(a.counts, b.counts);
  const auto c2 = Executor(opts(200, 43)).run(c);
  EXPECT_NE(a.counts, c2.counts);
}

TEST(Executor, RunSingleExposesStateAndClbits) {
  QuantumCircuit c(2, 1);
  c.x(0).measure(0, 0);
  const auto traj = Executor(opts(1, 5)).run_single(c);
  EXPECT_EQ(traj.clbits, 1u);
  EXPECT_NEAR(traj.state.probability_one(0), 1.0, 1e-12);
}

TEST(Executor, ResetInCircuit) {
  QuantumCircuit c(1, 1);
  c.h(0).reset(0).measure(0, 0);
  const auto result = Executor(opts(200, 6)).run(c);
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_EQ(result.counts.begin()->first, "0");
}

TEST(Executor, GlobalPhaseAppliedOnRunSingle) {
  QuantumCircuit c(1, 0);
  c.add_global_phase(M_PI);
  const auto traj = Executor(opts(1, 7)).run_single(c);
  EXPECT_NEAR(traj.state.amplitude(0).real(), -1.0, 1e-12);
}

TEST(Executor, NoiseReducesDeterminism) {
  QuantumCircuit c(1, 1);
  c.x(0).measure(0, 0);
  qutes::RunConfig o = opts(5000, 8);
  o.backend.noise.depolarizing_1q = 0.2;
  const auto result = Executor(o).run(c);
  EXPECT_FALSE(result.fast_path);
  ASSERT_TRUE(result.counts.count("1"));
  // Depolarizing with p=0.2 leaves ~1 - 2p/3 in the excited state.
  const double p1 = static_cast<double>(result.counts.at("1")) / 5000.0;
  EXPECT_NEAR(p1, 1.0 - 0.2 * 2.0 / 3.0, 0.03);
}

TEST(Executor, ReadoutErrorFlipsResults) {
  QuantumCircuit c(1, 1);
  c.measure(0, 0);  // ideal result: always 0
  qutes::RunConfig o = opts(5000, 9);
  o.backend.noise.readout_error = 0.25;
  const auto result = Executor(o).run(c);
  ASSERT_TRUE(result.counts.count("1"));
  const double p1 = static_cast<double>(result.counts.at("1")) / 5000.0;
  EXPECT_NEAR(p1, 0.25, 0.03);
}

TEST(Executor, EmptyCircuitRejected) {
  QuantumCircuit c;
  EXPECT_THROW(Executor().run(c), CircuitError);
}

// Parameterized check: every 1-qubit gate type executes through
// apply_instruction and preserves the norm.
class GateExecution : public ::testing::TestWithParam<GateType> {};

TEST_P(GateExecution, PreservesNorm) {
  QuantumCircuit c(2, 0);
  c.h(0).h(1);
  Instruction in;
  in.type = GetParam();
  in.qubits = {0};
  const std::size_t params = param_count(GetParam());
  for (std::size_t i = 0; i < params; ++i) in.params.push_back(0.3 + 0.1 * i);
  c.append(in);
  const auto traj = Executor(opts(1, 10)).run_single(c);
  EXPECT_NEAR(traj.state.norm(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    OneQubitGates, GateExecution,
    ::testing::Values(GateType::H, GateType::X, GateType::Y, GateType::Z,
                      GateType::S, GateType::Sdg, GateType::T, GateType::Tdg,
                      GateType::SX, GateType::RX, GateType::RY, GateType::RZ,
                      GateType::P, GateType::U));

}  // namespace
