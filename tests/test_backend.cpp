// Backend interface + registry tests: name resolution, capability
// enforcement by the Executor, backend-specific noise semantics, MPS
// thread-invariant sampling, and capability-clamped fusion planning.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "qutes/circuit/backend.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/error.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/obs/obs.hpp"
#include "qutes/testing/differential.hpp"
#include "qutes/testing/generators.hpp"

namespace circ = qutes::circ;
namespace sim = qutes::sim;
namespace qt = qutes::testing;
using qutes::CircuitError;
using qutes::LangError;

namespace {

circ::QuantumCircuit ghz(std::size_t n) {
  circ::QuantumCircuit c(n, n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  c.measure_all();
  return c;
}

std::uint64_t total_shots(const sim::Counts& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, n] : counts) total += n;
  return total;
}

}  // namespace

// ---- registry ---------------------------------------------------------------

TEST(BackendRegistry, BuiltInsAreRegistered) {
  const std::vector<std::string> names = circ::backend_names();
  for (const char* name : {"density", "mps", "stabilizer", "statevector"}) {
    EXPECT_TRUE(circ::backend_known(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(circ::backend_known("tensorflow"));
}

TEST(BackendRegistry, UnknownNameThrowsListingKnownBackends) {
  try {
    (void)circ::make_backend("qpu");
    FAIL() << "make_backend accepted an unknown name";
  } catch (const CircuitError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown backend \"qpu\""), std::string::npos) << what;
    EXPECT_NE(what.find("statevector"), std::string::npos) << what;
    EXPECT_NE(what.find("mps"), std::string::npos) << what;
  }
}

TEST(BackendRegistry, ExecutorRejectsUnknownBackendName) {
  qutes::RunConfig options;
  options.backend.name = "qpu";
  EXPECT_THROW((void)circ::Executor(options).run(ghz(2)), CircuitError);
}

TEST(BackendRegistry, RejectsEmptyNameAndNullFactory) {
  EXPECT_THROW(circ::register_backend("", +[]() -> std::unique_ptr<circ::Backend> {
                 return nullptr;
               }),
               CircuitError);
  EXPECT_THROW(circ::register_backend("null-factory", nullptr), CircuitError);
}

namespace {

/// Minimal experimental method: proves third-party backends plug in through
/// the same registry + Executor path as the built-ins.
class FixedCountsBackend final : public circ::Backend {
public:
  [[nodiscard]] std::string name() const override { return "fixed-counts"; }
  [[nodiscard]] circ::BackendCapabilities capabilities() const override {
    return {};
  }
  void execute(const circ::QuantumCircuit&, const qutes::RunConfig& options,
               circ::ExecutionResult& result) const override {
    result.counts["fixed"] = options.shots;
    result.trajectories = 1;
  }
};

}  // namespace

TEST(BackendRegistry, CustomBackendRunsThroughTheExecutor) {
  circ::register_backend("fixed-counts", +[]() -> std::unique_ptr<circ::Backend> {
    return std::make_unique<FixedCountsBackend>();
  });
  EXPECT_TRUE(circ::backend_known("fixed-counts"));
  qutes::RunConfig options;
  options.backend.name = "fixed-counts";
  options.shots = 77;
  const circ::ExecutionResult result = circ::Executor(options).run(ghz(2));
  EXPECT_EQ(result.backend, "fixed-counts");
  EXPECT_EQ(result.counts.at("fixed"), 77u);
}

// ---- executor-side validation and capability checks -------------------------

TEST(BackendCapabilities, ZeroBondDimensionIsRejectedUpFront) {
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.backend.max_bond_dim = 0;
  try {
    (void)circ::Executor(options).run(ghz(2));
    FAIL() << "max_bond_dim=0 accepted";
  } catch (const CircuitError& e) {
    EXPECT_NE(std::string(e.what()).find("max_bond_dim"), std::string::npos);
  }
}

TEST(BackendCapabilities, StatevectorQubitCeilingSuggestsMps) {
  circ::QuantumCircuit wide(sim::StateVector::kMaxQubits + 2, 1);
  wide.h(0);
  try {
    (void)circ::Executor(qutes::RunConfig{}).run(wide);
    FAIL() << "statevector accepted a circuit past its qubit ceiling";
  } catch (const CircuitError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(sim::StateVector::kMaxQubits)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("--backend mps"), std::string::npos) << what;
    // The too-wide circuit above is all-Clifford (a lone H), so the message
    // must also point at the width-unbounded stabilizer method.
    EXPECT_NE(what.find("--backend stabilizer"), std::string::npos) << what;
  }
}

TEST(BackendCapabilities, NonCliffordCeilingMessageOmitsStabilizer) {
  circ::QuantumCircuit wide(sim::StateVector::kMaxQubits + 2, 1);
  wide.t(0);
  try {
    (void)circ::Executor(qutes::RunConfig{}).run(wide);
    FAIL() << "statevector accepted a circuit past its qubit ceiling";
  } catch (const CircuitError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("--backend stabilizer"), std::string::npos) << what;
  }
}

TEST(BackendCapabilities, MpsRunsPastTheDenseCeiling) {
  // The same width that makes the dense backend refuse is routine for the
  // MPS: a GHZ chain keeps every bond at dimension 2.
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.shots = 256;
  const circ::ExecutionResult result =
      circ::Executor(options).run(ghz(sim::StateVector::kMaxQubits + 4));
  EXPECT_EQ(total_shots(result.counts), 256u);
  EXPECT_EQ(result.counts.size(), 2u);  // all-zeros and all-ones only
  EXPECT_EQ(result.max_bond_dim_reached, 2u);
  EXPECT_EQ(result.truncation_error, 0.0);
}

TEST(BackendCapabilities, MpsRefusesNoiseModels) {
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.backend.noise.depolarizing_1q = 0.01;
  try {
    (void)circ::Executor(options).run(ghz(3));
    FAIL() << "mps accepted a noise model";
  } catch (const CircuitError& e) {
    EXPECT_NE(std::string(e.what()).find("does not support noise"),
              std::string::npos);
  }
}

TEST(BackendCapabilities, DensityRefusesDynamicCircuits) {
  circ::QuantumCircuit c(2, 2);
  c.h(0).measure(0, 0);
  c.x(1).c_if(0, 1);
  c.measure_all();
  qutes::RunConfig options;
  options.backend.name = "density";
  try {
    (void)circ::Executor(options).run(c);
    FAIL() << "density accepted a dynamic circuit";
  } catch (const CircuitError& e) {
    EXPECT_NE(std::string(e.what()).find("only runs static circuits"),
              std::string::npos);
  }
}

// ---- backend semantics ------------------------------------------------------

TEST(BackendSemantics, DensityMatchesTrajectoryAverageUnderNoise) {
  // The density backend realizes the NoiseModel as exact closed-form
  // channels; the statevector backend averages Monte-Carlo trajectories.
  // Same model, same circuit: the sampled distributions must agree.
  circ::QuantumCircuit c(2, 2);
  c.h(0).cx(0, 1).x(1);
  c.measure_all();

  qutes::RunConfig options;
  options.shots = 20000;
  options.backend.noise.depolarizing_1q = 0.05;
  options.backend.noise.depolarizing_2q = 0.08;
  options.backend.name = "density";
  const sim::Counts exact = circ::Executor(options).run(c).counts;
  options.backend.name = "statevector";
  const sim::Counts sampled = circ::Executor(options).run(c).counts;

  const double tvd = qt::total_variation_distance(
      qt::counts_to_distribution(exact), qt::counts_to_distribution(sampled));
  EXPECT_LT(tvd, 0.03) << "exact-channel vs trajectory TVD=" << tvd;
}

TEST(BackendSemantics, DensityAppliesReadoutError) {
  // |0> measured through a 10% readout flip: P(1) must track the flip rate,
  // which only shows up if the density sampling path honors the model.
  circ::QuantumCircuit c(1, 1);
  c.measure(0, 0);
  qutes::RunConfig options;
  options.backend.name = "density";
  options.shots = 20000;
  options.backend.noise.readout_error = 0.1;
  const sim::Counts counts = circ::Executor(options).run(c).counts;
  const double p1 = static_cast<double>(counts.at("1")) / 20000.0;
  EXPECT_NEAR(p1, 0.1, 0.02);
}

TEST(BackendSemantics, MpsStaticCountsAreThreadInvariant) {
  // Counter-derived Rng(seed, shot) streams: the histogram may not depend on
  // whether the shot loop ran serial or across OpenMP threads.
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.shots = 4096;
  options.backend.parallel_shots = true;
  const circ::QuantumCircuit c = ghz(16);
  const sim::Counts parallel = circ::Executor(options).run(c).counts;
  options.backend.parallel_shots = false;
  const sim::Counts serial = circ::Executor(options).run(c).counts;
  EXPECT_EQ(parallel, serial);
}

TEST(BackendSemantics, MpsDynamicCountsAreThreadInvariant) {
  circ::QuantumCircuit c(3, 3);
  c.h(0).measure(0, 0);
  c.x(1).c_if(0, 1);
  c.h(2).measure(2, 2);
  c.reset(2);
  c.measure_all();
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.shots = 2048;
  options.backend.parallel_shots = true;
  const circ::ExecutionResult parallel = circ::Executor(options).run(c);
  options.backend.parallel_shots = false;
  const circ::ExecutionResult serial = circ::Executor(options).run(c);
  EXPECT_EQ(parallel.counts, serial.counts);
  EXPECT_FALSE(parallel.fast_path);
  EXPECT_EQ(parallel.trajectories, 2048u);
}

TEST(BackendSemantics, MpsReportsTruncationDiagnostics) {
  // Brickwork entangles the full register; a bond cap of 2 cannot hold it,
  // so the run must report the discarded weight instead of hiding it.
  const circ::QuantumCircuit c = qt::brickwork_circuit(10, 6, 0xbead);
  qutes::RunConfig options;
  options.backend.name = "mps";
  options.shots = 64;
  options.backend.max_bond_dim = 2;
  const circ::ExecutionResult truncated = circ::Executor(options).run(c);
  EXPECT_GT(truncated.truncation_error, 0.0);
  EXPECT_EQ(truncated.max_bond_dim_reached, 2u);

  options.backend.max_bond_dim = 4096;
  options.backend.truncation_threshold = 0.0;
  const circ::ExecutionResult exact = circ::Executor(options).run(c);
  EXPECT_EQ(exact.truncation_error, 0.0);
  EXPECT_GT(exact.max_bond_dim_reached, 2u);
}

// ---- capability-driven fusion planning --------------------------------------

TEST(BackendFusion, MpsClampsFusedBlocksToTwoAdjacentQubits) {
  // Same circuit, same fusion request: the statevector may build blocks up
  // to 4 wires wide; the MPS capability entry clamps planning to 2-qubit
  // blocks on contiguous wires — no executor-side special case involved.
  const circ::QuantumCircuit c = qt::brickwork_circuit(8, 4, 0xfade);
  qutes::RunConfig options;
  options.shots = 16;
  options.backend.max_fused_qubits = 4;

  options.backend.name = "statevector";
  const circ::ExecutionResult dense = circ::Executor(options).run(c);
  EXPECT_GT(dense.fused_blocks, 0u);
  std::size_t dense_widest = 0;
  for (const auto& [width, blocks] : dense.fused_width_histogram) {
    dense_widest = std::max(dense_widest, width);
  }
  EXPECT_GT(dense_widest, 2u);

  options.backend.name = "mps";
  const circ::ExecutionResult mps = circ::Executor(options).run(c);
  EXPECT_GT(mps.fused_blocks, 0u);
  for (const auto& [width, blocks] : mps.fused_width_histogram) {
    EXPECT_LE(width, 2u) << blocks << " fused blocks of width " << width;
  }
}

TEST(BackendFusion, DensityRunsGateAtATime) {
  const circ::QuantumCircuit c = qt::brickwork_circuit(4, 3, 0xd0d0);
  qutes::RunConfig options;
  options.backend.name = "density";
  options.shots = 16;
  options.backend.max_fused_qubits = 4;
  const circ::ExecutionResult result = circ::Executor(options).run(c);
  EXPECT_EQ(result.fused_blocks, 0u);
  EXPECT_EQ(result.fused_gates, 0u);
}

TEST(BackendFusion, StabilizerNeverReceivesFusedDenseBlocks) {
  // The tableau cannot replay a dense unitary, so its capability entry caps
  // fusion at width 1; even an aggressive fusion request must plan zero
  // blocks rather than rely on a backend-side rejection.
  qutes::RunConfig options;
  options.backend.name = "stabilizer";
  options.shots = 64;
  options.backend.max_fused_qubits = 5;
  const circ::ExecutionResult result = circ::Executor(options).run(ghz(6));
  EXPECT_EQ(result.fused_blocks, 0u);
  EXPECT_EQ(result.fused_gates, 0u);
  EXPECT_EQ(total_shots(result.counts), 64u);
}

// ---- the "auto" method ------------------------------------------------------

TEST(BackendAuto, PicksStabilizerForCliffordCircuits) {
  qutes::RunConfig options;
  options.backend.name = "auto";
  options.shots = 64;
  const circ::ExecutionResult result = circ::Executor(options).run(ghz(4));
  EXPECT_EQ(result.backend, "stabilizer");
  EXPECT_EQ(total_shots(result.counts), 64u);
}

TEST(BackendAuto, FallsBackToStatevectorOnNonClifford) {
  circ::QuantumCircuit c(2, 2);
  c.h(0);
  c.t(0);
  c.cx(0, 1);
  c.measure_all();
  qutes::RunConfig options;
  options.backend.name = "auto";
  options.shots = 64;
  const circ::ExecutionResult result = circ::Executor(options).run(c);
  EXPECT_EQ(result.backend, "statevector");
  EXPECT_EQ(total_shots(result.counts), 64u);
}

TEST(BackendAuto, FallsBackToStatevectorUnderNoise) {
  // Noise keeps Clifford circuits off the tableau (supports_noise=false).
  qutes::RunConfig options;
  options.backend.name = "auto";
  options.shots = 64;
  options.backend.noise.depolarizing_1q = 0.01;
  const circ::ExecutionResult result = circ::Executor(options).run(ghz(3));
  EXPECT_EQ(result.backend, "statevector");
}

TEST(BackendAuto, ResolvesAgainstThePipelineOutput) {
  // A Hardware-preset pipeline lowers to the {u, cx} basis, so a circuit
  // that *starts* all-Clifford is no longer Clifford when the backend is
  // chosen: auto must inspect the prepared circuit, not the input.
  circ::PassManager pipeline = circ::make_pipeline(circ::Preset::Basis);
  qutes::RunConfig options;
  options.backend.name = "auto";
  options.shots = 16;
  options.pipeline.manager = &pipeline;
  const circ::ExecutionResult result = circ::Executor(options).run(ghz(3));
  // H lowers to u(...) under the basis preset; the dense method must run it.
  EXPECT_EQ(result.backend, "statevector");
  EXPECT_EQ(total_shots(result.counts), 16u);
}

TEST(BackendAuto, ValidateAcceptsAutoWithoutRegistryEntry) {
  qutes::RunConfig options;
  options.backend.name = "auto";
  EXPECT_NO_THROW(options.validate());
  EXPECT_FALSE(circ::backend_known("auto"));  // not a registry entry
}

// ---- language facade plumbing -----------------------------------------------

TEST(LangBackend, UnknownBackendNameThrowsLangErrorBeforeRunning) {
  qutes::RunConfig options;
  options.backend.name = "qpu";
  try {
    (void)qutes::lang::run_source("print 1;", options);
    FAIL() << "run_source accepted an unknown backend";
  } catch (const LangError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown backend \"qpu\""), std::string::npos) << what;
    EXPECT_NE(what.find("mps"), std::string::npos) << what;
  }
}

TEST(LangBackend, ZeroBondDimensionThrowsLangError) {
  qutes::RunConfig options;
  options.backend.max_bond_dim = 0;
  EXPECT_THROW((void)qutes::lang::run_source("print 1;", options), LangError);
}

TEST(LangBackend, ReplayRunsOnTheRequestedBackend) {
  qutes::RunConfig options;
  options.replay_shots = 64;
  options.backend.name = "mps";
  const qutes::lang::RunResult result =
      qutes::lang::run_source("qubit q = |+>; print q;", options);
  ASSERT_TRUE(result.replay.has_value());
  EXPECT_EQ(result.replay->backend, "mps");
  EXPECT_EQ(total_shots(result.replay->counts), 64u);
}

TEST(LangBackend, ReplayIsSkippedForPurelyClassicalPrograms) {
  qutes::RunConfig options;
  options.replay_shots = 16;
  const qutes::lang::RunResult result =
      qutes::lang::run_source("print 1 + 2;", options);
  EXPECT_FALSE(result.replay.has_value());
}

// ---- capability metrics -------------------------------------------------------

// Each backend publishes its own obs instruments: gates applied, peak state
// bytes, and (for MPS) bond-dimension / truncation gauges.
TEST(BackendMetrics, EachBackendPublishesItsCapabilityMetrics) {
  namespace obs = qutes::obs;
  obs::set_metrics_enabled(true);
  const auto snapshot_for = [](const std::string& backend) {
    obs::reset_metrics();
    qutes::RunConfig options;
    options.shots = 16;
    options.seed = 7;
    options.backend.name = backend;
    (void)circ::Executor(options).run(ghz(3));
    return obs::metrics().snapshot();
  };

  const auto sv = snapshot_for("statevector");
  EXPECT_GT(sv.counters.at("sv.gates_applied"), 0u);
  EXPECT_EQ(sv.gauges.at("sv.peak_bytes"), 16.0 * 8.0);  // 2^3 amplitudes

  const auto density = snapshot_for("density");
  EXPECT_GT(density.counters.at("density.gates_applied"), 0u);
  EXPECT_EQ(density.gauges.at("density.peak_bytes"), 16.0 * 64.0);  // 4^3

  const auto mps = snapshot_for("mps");
  EXPECT_GT(mps.counters.at("mps.gates_applied"), 0u);
  EXPECT_GE(mps.gauges.at("mps.max_bond_dim"), 2.0);  // GHZ needs bond 2

  const auto stab = snapshot_for("stabilizer");
  EXPECT_GT(stab.counters.at("stab.gates_applied"), 0u);
  EXPECT_GT(stab.counters.at("stab.measurements"), 0u);
  EXPECT_GT(stab.counters.at("stab.random_outcomes"), 0u);  // GHZ coin flips
  EXPECT_GT(stab.gauges.at("stab.peak_bytes"), 0.0);
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}
