// E8 — language-feature conformance suite: one test per feature the paper
// claims for Qutes in its comparative analysis (Section 2.2) and type-system
// description (Section 4). Each test is a tiny Qutes program whose
// observable behaviour demonstrates the feature.
#include <gtest/gtest.h>

#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

// "supporting type promotion between classical and quantum types"
TEST(Conformance, TypePromotionClassicalToQuantum) {
  EXPECT_EQ(run("int c = 6; quint q = c; print q;"), "6\n");
  EXPECT_EQ(run("bool c = true; qubit q = c; print q;"), "true\n");
  EXPECT_EQ(run("string c = \"011\"; qustring q = c; print q;"), "011\n");
}

// "enabling quantum-to-classical conversions via measurement"
TEST(Conformance, QuantumToClassicalViaMeasurement) {
  EXPECT_EQ(run("quint q = 5q; int c = q; print c;"), "5\n");
}

// "robust operations like automatic measurement" for conditions
TEST(Conformance, AutomaticMeasurementInConditions) {
  EXPECT_EQ(run("qubit q = |1>; if (q) print \"measured 1\";"), "measured 1\n");
  EXPECT_EQ(run("quint q = 2q; while (q > 2) { } print \"terminated\";"),
            "terminated\n");
}

// "versatile data types, including qubit, quint, and qustring"
TEST(Conformance, AllThreeQuantumTypes) {
  EXPECT_EQ(run("qubit a = |1>; quint b = 3q; qustring c = \"10\"q; "
                "print a; print b; print c;"),
            "true\n3\n10\n");
}

// "supports arrays of both classical and quantum data types"
TEST(Conformance, ClassicalAndQuantumArrays) {
  EXPECT_EQ(run("int[] xs = [4, 5]; print xs[0] + xs[1];"), "9\n");
  EXPECT_EQ(run("qubit[] qs = [|1>, |0>]; print qs[0]; print qs[1];"),
            "true\nfalse\n");
}

// arrays: "indexed access ... read or modify elements"
TEST(Conformance, ArrayIndexedReadWrite) {
  EXPECT_EQ(run("int[] xs = [1, 2, 3]; xs[1] = 20; print xs[1];"), "20\n");
}

// arrays: "ability to iterate through arrays"
TEST(Conformance, ForeachIteration) {
  EXPECT_EQ(run("int total = 0; foreach x in [1, 2, 3, 4] { total += x; } "
                "print total;"),
            "10\n");
}

// "functions can accept multiple parameters and return values,
//  accommodating both classical and quantum types"
TEST(Conformance, FunctionsWithMixedTypes) {
  EXPECT_EQ(run("int addmeasured(quint q, int k) { int m = q; return m + k; } "
                "quint v = 4q; print addmeasured(v, 2);"),
            "6\n");
}

// "variables are always passed by reference"
TEST(Conformance, PassByReference) {
  EXPECT_EQ(run("void gate_it(qubit q) { not q; } "
                "qubit v = |0>; gate_it(v); print v;"),
            "true\n");
}

// control structures: if / if-else / while / foreach
TEST(Conformance, ControlStructures) {
  EXPECT_EQ(run("int x = 3; if (x > 2) print \"gt\"; else print \"le\";"), "gt\n");
  EXPECT_EQ(run("int n = 0; while (n < 3) n += 1; print n;"), "3\n");
}

// "superposition addition" as a language-level operation
TEST(Conformance, SuperpositionAddition) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string out =
        run("quint s = [0, 2]q; quint<3> t = s + 1; print t;", seed);
    EXPECT_TRUE(out == "1\n" || out == "3\n") << out;
  }
}

// "cyclic permutation" as a language-level operation
TEST(Conformance, CyclicPermutationOperator) {
  EXPECT_EQ(run("quint<4> x = 3q; x <<= 2; print x;"), "12\n");
}

// quantum gates exposed as language statements
TEST(Conformance, GateStatements) {
  EXPECT_EQ(run("qubit q = |0>; not q; pauliz q; pauliy q; hadamard q; "
                "hadamard q; pauliy q; not q; print q;"),
            "false\n");
}

// Grover's search surfaced through the `in` operator
TEST(Conformance, GroverInOperator) {
  EXPECT_EQ(run("qustring t = \"00100\"q; print \"1\" in t;"), "true\n");
}

// classical data types: bool, int, float, string
TEST(Conformance, ClassicalTypes) {
  EXPECT_EQ(run("bool b = true; int i = 2; float f = 0.5; string s = \"x\"; "
                "print b; print i; print f; print s;"),
            "true\n2\n0.5\nx\n");
}

// no-cloning respected: quantum assignment aliases instead of copying
TEST(Conformance, NoCloningAliasSemantics) {
  // b aliases a, so flipping b flips a.
  EXPECT_EQ(run("qubit a = |0>; qubit b = a; not b; print a;"), "true\n");
}

// comments (line and block) are part of the surface syntax
TEST(Conformance, Comments) {
  EXPECT_EQ(run("// line\n/* block */ print 1;"), "1\n");
}

// barrier statement reaches the circuit log
TEST(Conformance, BarrierStatement) {
  qutes::RunConfig options;
  const auto result = run_source("qubit q = |0>; barrier; not q;", options);
  EXPECT_EQ(result.circuit.count_ops().count("barrier"), 1u);
}

}  // namespace
