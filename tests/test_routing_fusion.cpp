// Gate-fusion and linear-routing pass tests: semantic preservation (exact
// state fidelity), resource reduction, topology compliance.
#include <gtest/gtest.h>
// This file exercises the deprecated transpile()/route_linear() free
// functions on purpose (legacy-vs-pipeline equivalence); silence their
// deprecation warnings locally.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/routing.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

double final_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  Executor ex({.shots = 1, .seed = 5});
  return ex.run_single(a).state.fidelity(ex.run_single(b).state);
}

// ---- 1q unitary decomposition -----------------------------------------------------

class EulerDecomposition : public ::testing::TestWithParam<int> {};

TEST_P(EulerDecomposition, ReconstructsTheMatrix) {
  using namespace sim::gates;
  const sim::Matrix2 cases[] = {
      I(), X(), Y(), Z(), H(), S(), Sdg(), T(), SX(),
      RX(0.7), RY(-1.3), RZ(2.9), P(0.4),
      U(0.3, 1.1, -0.8),
      H() * T() * RX(0.5),
      RZ(1.0) * RY(2.0) * RZ(3.0),
  };
  const sim::Matrix2& u = cases[GetParam()];
  const EulerAngles angles = decompose_1q_unitary(u);
  sim::Matrix2 rebuilt = U(angles.theta, angles.phi, angles.lambda);
  const sim::cplx phase = std::exp(sim::cplx{0.0, angles.phase});
  for (auto& m : rebuilt.m) m *= phase;
  EXPECT_LT(rebuilt.distance(u), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Matrices, EulerDecomposition, ::testing::Range(0, 16));

TEST(EulerDecomposition, RejectsNonUnitary) {
  sim::Matrix2 bad = sim::gates::X();
  bad.m[0] = sim::cplx{2.0};
  EXPECT_THROW((void)decompose_1q_unitary(bad), CircuitError);
}

// ---- fusion ---------------------------------------------------------------------

TEST(Fusion, CollapsesRunsToOneGate) {
  QuantumCircuit c(1);
  c.h(0).t(0).s(0).rx(0.3, 0).rz(-0.9, 0);
  const QuantumCircuit fused = fuse_single_qubit_gates(c);
  EXPECT_EQ(fused.gate_count(), 1u);
  EXPECT_EQ(fused.instructions()[0].type, GateType::U);
  EXPECT_NEAR(final_fidelity(c, fused), 1.0, 1e-9);
}

TEST(Fusion, IdentityRunsVanish) {
  QuantumCircuit c(1);
  c.h(0).h(0).s(0).sdg(0);
  EXPECT_EQ(fuse_single_qubit_gates(c).gate_count(), 0u);
}

TEST(Fusion, MultiQubitGatesBreakRuns) {
  QuantumCircuit c(2);
  c.h(0).t(0).cx(0, 1).s(0).h(0);
  const QuantumCircuit fused = fuse_single_qubit_gates(c);
  // h,t fuse; cx stays; s,h fuse -> 3 instructions.
  EXPECT_EQ(fused.gate_count(), 3u);
  EXPECT_NEAR(final_fidelity(c, fused), 1.0, 1e-9);
}

TEST(Fusion, BarriersAndMeasurementsBreakRuns) {
  QuantumCircuit c(1, 1);
  c.h(0);
  c.barrier();
  c.h(0);
  const QuantumCircuit fused = fuse_single_qubit_gates(c);
  EXPECT_EQ(fused.gate_count(), 2u);  // barrier prevents cancellation

  QuantumCircuit m(1, 1);
  m.h(0).measure(0, 0).h(0);
  EXPECT_EQ(fuse_single_qubit_gates(m).count_ops().at("u"), 2u);
}

TEST(Fusion, TracksGlobalPhase) {
  // T S Z = P(pi/4 + pi/2 + pi): pure phase on |1>, no global phase drift —
  // while Z via RZ introduces one. Verify exact amplitudes (not just
  // fidelity) against the original.
  QuantumCircuit c(2);
  c.h(0).t(0).s(0).z(0).rz(1.1, 0).h(1);
  const QuantumCircuit fused = fuse_single_qubit_gates(c);
  Executor ex({.shots = 1, .seed = 1});
  const auto a = ex.run_single(c);
  const auto b = ex.run_single(fused);
  for (std::uint64_t i = 0; i < a.state.dim(); ++i) {
    EXPECT_NEAR(std::abs(a.state.amplitude(i) - b.state.amplitude(i)), 0.0, 1e-9);
  }
}

TEST(Fusion, LargeRandomCircuitPreserved) {
  QuantumCircuit c(4);
  // Pseudo-random dense mix.
  for (int round = 0; round < 10; ++round) {
    const auto q = static_cast<std::size_t>((round * 7 + 3) % 4);
    c.rx(0.1 * round, q).t(q).h(q);
    c.cx(q, (q + 1) % 4);
    c.rz(0.2 * round, (q + 2) % 4);
  }
  const QuantumCircuit fused = fuse_single_qubit_gates(c);
  EXPECT_LT(fused.gate_count(), c.gate_count());
  EXPECT_NEAR(final_fidelity(c, fused), 1.0, 1e-9);
}

// ---- routing --------------------------------------------------------------------

bool all_two_qubit_gates_adjacent(const QuantumCircuit& c) {
  for (const Instruction& in : c.instructions()) {
    if (in.qubits.size() == 2 && is_unitary_gate(in.type)) {
      const auto a = static_cast<std::int64_t>(in.qubits[0]);
      const auto b = static_cast<std::int64_t>(in.qubits[1]);
      if (std::abs(a - b) != 1) return false;
    }
  }
  return true;
}

TEST(Routing, AdjacentGatesPassThrough) {
  QuantumCircuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  const RoutingResult routed = route_linear(c);
  EXPECT_EQ(routed.swaps_inserted, 0u);
  EXPECT_EQ(routed.circuit.size(), c.size());
}

TEST(Routing, DistantGateGetsSwaps) {
  QuantumCircuit c(4);
  c.h(0).cx(0, 3);
  const RoutingResult routed = route_linear(c);
  EXPECT_GT(routed.swaps_inserted, 0u);
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
  EXPECT_NEAR(final_fidelity(c, routed.circuit), 1.0, 1e-9);
}

class RoutingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RoutingSweep, SemanticsPreservedWithRestore) {
  QuantumCircuit c(5);
  for (std::size_t q = 0; q < 5; ++q) c.ry(0.2 + 0.3 * static_cast<double>(q), q);
  switch (GetParam()) {
    case 0: c.cx(0, 4).cx(4, 1).cz(0, 3); break;
    case 1: c.cx(0, 2).cx(2, 4).cx(4, 0).swap(1, 3); break;
    case 2: c.cz(0, 4).cz(1, 3).cx(2, 0).cp(0.7, 4, 1); break;
    case 3:
      for (std::size_t q = 0; q < 5; ++q) c.cx(q, (q + 2) % 5);
      break;
    default: break;
  }
  const RoutingResult routed = route_linear(c, /*restore_layout=*/true);
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(routed.final_layout[i], i);
  EXPECT_NEAR(final_fidelity(c, routed.circuit), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RoutingSweep, ::testing::Range(0, 4));

TEST(Routing, WithoutRestoreLayoutIsPermutation) {
  QuantumCircuit c(4);
  c.cx(0, 3);
  const RoutingResult routed = route_linear(c, /*restore_layout=*/false);
  // Some logical qubit moved; the layout records where.
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
  bool moved = false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (routed.final_layout[i] != i) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Routing, MeasurementsFollowTheLayout) {
  QuantumCircuit c(4, 1);
  c.x(3).cx(0, 3);  // forces movement of qubit 0 or 3
  c.measure(3, 0);
  const RoutingResult routed = route_linear(c, /*restore_layout=*/false);
  // Replay: clbit 0 must still read logical qubit 3's value (1).
  Executor ex({.shots = 1, .seed = 3});
  EXPECT_EQ(ex.run_single(routed.circuit).clbits, 1u);
}

TEST(Routing, RejectsWideGates) {
  QuantumCircuit c(4);
  c.ccx(0, 1, 3);
  EXPECT_THROW((void)route_linear(c), CircuitError);
}

TEST(Routing, ComposesWithFullPipeline) {
  // to-basis lowering -> fusion -> routing, end to end on an MCX circuit.
  QuantumCircuit c(5);
  for (std::size_t q = 0; q < 4; ++q) c.h(q);
  const std::size_t controls[3] = {0, 1, 2};
  c.mcx(controls, 4);
  const QuantumCircuit basis = decompose_to_basis(c);
  const QuantumCircuit fused = fuse_single_qubit_gates(basis);
  const RoutingResult routed = route_linear(fused);
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
  EXPECT_NEAR(final_fidelity(basis, routed.circuit), 1.0, 1e-9);
}

}  // namespace
