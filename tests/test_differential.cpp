// Cross-backend differential suite: every optimized execution path vs the
// dense reference backend, over hundreds of seeded random circuits.
//
// Every failure message carries the seed; reproduce locally with
//   diff_backends(random_circuit(SEED, <same options>), SEED).summary()
// Set QUTES_DIFF_QUICK=1 (scripts/check.sh --quick does) to run a scaled-down
// smoke sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/pass_manager.hpp"
#include "qutes/circuit/qasm.hpp"
#include "qutes/common/rng.hpp"
#include "qutes/lang/compiler.hpp"
#include "qutes/sim/statevector.hpp"
#include "qutes/testing/differential.hpp"
#include "qutes/testing/generators.hpp"
#include "qutes/testing/reference_backend.hpp"

namespace qt = qutes::testing;
namespace circ = qutes::circ;
using qt::Backend;
using qt::cplx;

namespace {

bool quick_mode() { return std::getenv("QUTES_DIFF_QUICK") != nullptr; }

std::size_t sweep(std::size_t full, std::size_t quick) {
  return quick_mode() ? quick : full;
}

qt::CircuitGenOptions unitary_options(std::uint64_t seed) {
  qt::CircuitGenOptions options;
  options.num_qubits = 2 + seed % 6;  // 2..7 qubits
  options.gates = 12 + seed % 24;
  options.allow_dynamic = false;
  options.measure_all = false;
  return options;
}

}  // namespace

// ---- reference-backend self-checks -----------------------------------------

TEST(ReferenceBackend, InstructionUnitariesAreUnitary) {
  for (std::uint64_t seed = 0; seed < sweep(40, 6); ++seed) {
    const circ::QuantumCircuit c = qt::random_circuit(seed, unitary_options(seed));
    for (const circ::Instruction& in : c.instructions()) {
      if (in.type == circ::GateType::Barrier) continue;
      const qt::DenseUnitary u = qt::instruction_unitary(in, c.num_qubits());
      EXPECT_LT(u.unitarity_defect(), 1e-10)
          << "seed=" << seed << " gate=" << circ::gate_name(in.type);
    }
  }
}

TEST(ReferenceBackend, BellState) {
  circ::QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  const std::vector<cplx> amps = qt::reference_statevector(c);
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(amps[0] - cplx{r}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[2]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(amps[3] - cplx{r}), 0.0, 1e-12);
}

TEST(ReferenceBackend, GhzDistributionIsExact) {
  circ::QuantumCircuit c(3, 3);
  c.h(0).cx(0, 1).cx(1, 2).measure_all();
  const auto dist = qt::reference_distribution(c);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist.at("000"), 0.5, 1e-12);
  EXPECT_NEAR(dist.at("111"), 0.5, 1e-12);
}

TEST(ReferenceBackend, TrajectoryEnumerationHonorsConditions) {
  // H; measure; X conditioned on the 1 branch -> qubit always ends in |0>,
  // but the recorded bit is still uniform.
  circ::QuantumCircuit c(1, 1);
  c.h(0).measure(0, 0);
  c.x(0).c_if(0, 1);
  const auto branches = qt::enumerate_trajectories(c);
  ASSERT_EQ(branches.size(), 2u);
  for (const qt::ReferenceBranch& b : branches) {
    EXPECT_NEAR(b.probability, 0.5, 1e-12);
    EXPECT_NEAR(std::abs(b.amps[0]), 1.0, 1e-12);  // both branches end in |0>
  }
}

// ---- comparator unit checks ------------------------------------------------

TEST(Comparators, GlobalPhaseIsTolerated) {
  const circ::QuantumCircuit c = qt::random_circuit(7, unitary_options(7));
  std::vector<cplx> amps = qt::reference_statevector(c);
  std::vector<cplx> rotated = amps;
  const cplx phase = std::exp(cplx{0.0, 1.234});
  for (cplx& a : rotated) a *= phase;
  const auto cmp = qt::compare_states_up_to_global_phase(amps, rotated);
  EXPECT_TRUE(cmp.equivalent) << cmp.detail;
  EXPECT_NEAR(cmp.fidelity, 1.0, 1e-10);
  EXPECT_LT(cmp.max_abs_delta, 1e-9);
}

TEST(Comparators, PerturbationIsCaught) {
  std::vector<cplx> amps = qt::reference_statevector(
      qt::random_circuit(9, unitary_options(9)));
  std::vector<cplx> bad = amps;
  bad[1] += cplx{0.05, -0.02};
  const auto cmp = qt::compare_states_up_to_global_phase(amps, bad);
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_THROW(qt::assert_equiv_up_to_global_phase(amps, bad),
               qutes::CircuitError);
}

TEST(Comparators, AncillaWeightIsResidual) {
  // A 4-amplitude state viewed against a 2-amplitude reference: weight on
  // the upper half (the "ancilla" qubit) must show up as residual.
  const std::vector<cplx> reference = {cplx{1.0}, cplx{0.0}};
  const std::vector<cplx> clean = {cplx{1.0}, cplx{0.0}, cplx{0.0}, cplx{0.0}};
  EXPECT_TRUE(qt::compare_states_up_to_global_phase(reference, clean).equivalent);
  const std::vector<cplx> leaky = {cplx{std::sqrt(0.9)}, cplx{0.0},
                                   cplx{std::sqrt(0.1)}, cplx{0.0}};
  const auto cmp = qt::compare_states_up_to_global_phase(reference, leaky);
  EXPECT_FALSE(cmp.equivalent);
  EXPECT_NEAR(cmp.residual, 0.1, 1e-12);
}

TEST(Comparators, TotalVariationDistance) {
  const std::map<std::string, double> a = {{"00", 0.5}, {"11", 0.5}};
  EXPECT_NEAR(qt::total_variation_distance(a, a), 0.0, 1e-15);
  const std::map<std::string, double> b = {{"01", 1.0}};
  EXPECT_NEAR(qt::total_variation_distance(a, b), 1.0, 1e-15);
  const std::map<std::string, double> c = {{"00", 0.25}, {"11", 0.75}};
  EXPECT_NEAR(qt::total_variation_distance(a, c), 0.25, 1e-15);
}

// ---- the main differential sweeps ------------------------------------------

TEST(Differential, EveryBackendMatchesReferenceOnRandomCircuits) {
  // >= 300 circuits per backend pairing in the full run. 2..7 qubits, the
  // full gate set including multi-controlled gates, barriers, GlobalPhase.
  const std::size_t seeds = sweep(320, 24);
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c = qt::random_circuit(seed, unitary_options(seed));
    report.merge(qt::diff_backends(c, seed));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
  EXPECT_EQ(report.comparisons, seeds * qt::all_backends().size());
}

TEST(Differential, CliffordCircuitsMatchEverywhere) {
  const std::size_t seeds = sweep(100, 10);
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c =
        qt::random_clifford_circuit(seed, 2 + seed % 5, 24);
    report.merge(qt::diff_backends(c, seed));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Differential, AncillaLoweringOfMultiControlledGates) {
  // Basis/Hardware presets lower MCX via V-chain ancillas: the lowered
  // circuit runs on more qubits than the reference. The comparator must
  // accept the widened state (ancillas restored to |0>).
  circ::QuantumCircuit c(5);
  for (std::size_t q = 0; q < 5; ++q) c.h(q);
  const std::vector<std::size_t> c4 = {0, 1, 2, 3};
  const std::vector<std::size_t> c3 = {0, 1, 2};
  const std::vector<std::size_t> c2 = {1, 2};
  c.mcx(c4, 4).mcz(c3, 3).mcp(0.7, c2, 0);
  const qt::DiffReport report = qt::diff_backends(c, 0);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Differential, DynamicCircuitsMatchReferenceDistribution) {
  // Mid-circuit measurement, reset, c_if: exact trajectory-enumeration
  // distribution vs sampled counts (TVD), plus bit-identical counts across
  // fused / unfused / O0 / QASM round trip at one executor seed.
  const std::size_t seeds = sweep(120, 10);
  qt::DiffOptions options;
  options.shots = 4096;
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    qt::CircuitGenOptions gen;
    gen.num_qubits = 2 + seed % 4;  // keep the key space small vs shot count
    gen.gates = 16;
    gen.allow_dynamic = true;
    gen.measure_all = true;
    const circ::QuantumCircuit c = qt::random_circuit(seed, gen);
    report.merge(qt::diff_dynamic_backends(c, seed, options));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
}

// ---- MPS-vs-dense sweeps (truncation disabled) ------------------------------

TEST(Differential, MpsMatchesReferenceOnNearestNeighborCircuits) {
  // Pinned-seed sweep of the MPS backend's native workload: two-qubit gates
  // only on adjacent pairs, so no swap routing fires and every divergence is
  // a contraction/SVD bug. Truncation is disabled (evolve_mps defaults), so
  // the match must be exact up to global phase and float error.
  const std::size_t seeds = sweep(120, 12);
  qt::DiffOptions options;
  options.backends = {Backend::Mps};
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c = qt::random_nearest_neighbor_circuit(
        0xa11ce000ULL + seed, 2 + seed % 7, 20 + seed % 20);
    report.merge(qt::diff_backends(c, seed, options));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
  EXPECT_EQ(report.comparisons, seeds);
}

TEST(Differential, MpsMatchesReferenceOnBrickworkCircuits) {
  // Brickwork layers entangle the whole register, so by the last layer the
  // bond dimension saturates at 2^(n/2): the hard exact-regime case.
  const std::size_t seeds = sweep(100, 8);
  qt::DiffOptions options;
  options.backends = {Backend::Mps};
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c =
        qt::brickwork_circuit(2 + seed % 6, 2 + seed % 4, 0xb41c0000ULL + seed);
    report.merge(qt::diff_backends(c, seed, options));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
}

TEST(Differential, MpsHandlesNonAdjacentAndWideGates) {
  // Long-range 2q gates go through swap chains; CCX/MCX go through the
  // DecomposeToBasis lowering (possibly with ancillas the comparator must
  // see restored to |0>). The full random generator exercises both.
  const std::size_t seeds = sweep(60, 6);
  qt::DiffOptions options;
  options.backends = {Backend::Mps};
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c =
        qt::random_circuit(0x3a3a0000ULL + seed, unitary_options(seed));
    report.merge(qt::diff_backends(c, seed, options));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---- stabilizer-vs-dense sweeps (Clifford circuits) -------------------------

TEST(Differential, StabilizerMatchesReferenceOnCliffordCircuits) {
  // Pinned-seed sweep of the tableau simulator against the dense reference:
  // random Clifford circuits at n <= 10, where the stabilizer state can be
  // extracted as a full statevector and compared up to global phase. Every
  // divergence is a tableau-update bug (wrong conjugation rule or phase
  // bookkeeping), since both sides are exact. Failures delta-debug down to a
  // minimal instruction subset like every other lane.
  const std::size_t seeds = sweep(220, 16);
  qt::DiffOptions options;
  options.backends = {Backend::Stabilizer};
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const circ::QuantumCircuit c = qt::random_clifford_circuit(
        0x57ab0000ULL + seed, 2 + seed % 9, 20 + seed % 30);
    report.merge(qt::diff_backends(c, seed, options));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
  EXPECT_EQ(report.comparisons, seeds);
}

TEST(Differential, StabilizerCountsMatchReferenceOnCliffordCircuits) {
  // Counts-level lane: Clifford circuit + measure-all through
  // diff_dynamic_backends, whose stabilizer block (gated on
  // is_clifford_circuit) checks sampled counts against the exact reference
  // distribution (TVD) and serial-vs-parallel bit-identity.
  const std::size_t seeds = sweep(60, 8);
  qt::DiffReport report;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    circ::QuantumCircuit c = qt::random_clifford_circuit(
        0x57abc000ULL + seed, 2 + seed % 5, 16 + seed % 16);
    c.measure_all();
    report.merge(qt::diff_dynamic_backends(c, seed));
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.circuits, seeds);
}

// ---- pinned regressions (fusion x c_if) ------------------------------------

TEST(Differential, FusionWithConditionsPinnedSeeds) {
  // Pinned seeds from sweeping the dynamic generator: each circuit carries
  // at least one conditioned gate between fusable runs, the exact shape that
  // would expose a fusion plan reordering gates across a c_if. Counts must
  // be bit-identical fused vs unfused, not just statistically close.
  const std::uint64_t pinned[] = {3, 17, 42, 88, 123, 2024};
  for (const std::uint64_t seed : pinned) {
    qt::CircuitGenOptions gen;
    gen.num_qubits = 4;
    gen.gates = 24;
    gen.allow_dynamic = true;
    gen.measure_all = true;
    const circ::QuantumCircuit c = qt::random_circuit(seed, gen);
    const bool has_condition =
        std::any_of(c.instructions().begin(), c.instructions().end(),
                    [](const circ::Instruction& in) {
                      return in.condition.has_value();
                    });
    EXPECT_TRUE(has_condition)
        << "seed=" << seed << " no longer generates a conditioned gate; "
        << "pick a new pinned seed so this regression keeps biting";

    qutes::RunConfig fused;
    fused.shots = 2048;
    fused.seed = 0xc1fULL + seed;
    fused.backend.max_fused_qubits = 4;
    qutes::RunConfig unfused = fused;
    unfused.backend.max_fused_qubits = 1;
    const auto counts_fused = circ::Executor(fused).run(c).counts;
    const auto counts_unfused = circ::Executor(unfused).run(c).counts;
    EXPECT_EQ(counts_fused, counts_unfused) << "seed=" << seed;

    const qt::DiffReport report = qt::diff_dynamic_backends(c, seed);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

// ---- pinned regressions (ReorderCommuting x presets) ------------------------

namespace {

/// Gate-at-a-time statevector evolution of a unitary circuit (no sampling).
std::vector<cplx> evolve_statevector(const circ::QuantumCircuit& c) {
  qutes::sim::StateVector sv(c.num_qubits());
  std::uint64_t scratch = 0;
  qutes::Rng rng(0);
  for (const circ::Instruction& in : c.instructions()) {
    circ::apply_instruction(sv, in, scratch, rng);
  }
  const auto amps = sv.amplitudes();
  return {amps.begin(), amps.end()};
}

}  // namespace

TEST(Differential, ReorderCommutingComposesWithEveryPresetPinnedSeeds) {
  // ReorderCommuting alone only performs legal adjacent transpositions; the
  // dangerous interactions are with the other passes. Running it before a
  // preset changes what the lowering and peephole stages see; running it
  // after one must respect the ancilla wires and SWAP chains they introduced.
  // Sandwich the pass around every preset on pinned seeds and check the
  // evolved state against the dense reference of the untouched circuit, up
  // to global phase (ancilla weight shows up as residual and fails).
  const std::uint64_t pinned[] = {3, 17, 42, 88, 123, 2024};
  const circ::Preset presets[] = {circ::Preset::O0, circ::Preset::O1,
                                  circ::Preset::Basis, circ::Preset::Hardware};
  circ::PassManager reorder;
  reorder.emplace<circ::ReorderCommuting>();
  for (const std::uint64_t seed : pinned) {
    const circ::QuantumCircuit c = qt::random_circuit(seed, unitary_options(seed));
    const std::vector<cplx> reference = qt::reference_statevector(c);
    for (const circ::Preset preset : presets) {
      for (const bool reorder_first : {true, false}) {
        circ::PropertySet properties;
        circ::QuantumCircuit lowered = circ::make_pipeline(preset).run(
            reorder_first ? reorder.run(c) : c, properties);
        if (!reorder_first) lowered = reorder.run(lowered);
        const auto cmp = qt::compare_states_up_to_global_phase(
            reference, evolve_statevector(lowered));
        EXPECT_TRUE(cmp.equivalent)
            << "seed=" << seed << " preset=" << circ::preset_name(preset)
            << (reorder_first ? " reorder-first: " : " reorder-last: ")
            << cmp.detail;
      }
    }
  }
}

// ---- language-engine differential ------------------------------------------

namespace {

/// One engine's observable result: printed output + the compiled circuit's
/// QASM on success, or the LangError text (which embeds "line:col:") on
/// rejection. Two engines are equivalent iff these compare equal.
struct EngineOutcome {
  bool ok = false;
  std::string output;
  std::string qasm;
  std::string error;
};

EngineOutcome run_engine(const std::string& source, qutes::ExecMode mode) {
  qutes::RunConfig config;
  config.seed = 11;
  config.include_stdlib = false;  // generated programs don't call stdlib
  config.exec_mode = mode;
  EngineOutcome out;
  try {
    const qutes::lang::RunResult result = qutes::lang::run_source(source, config);
    out.ok = true;
    out.output = result.output;
    out.qasm = circ::qasm::export_circuit(result.circuit);
  } catch (const qutes::LangError& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace

TEST(Differential, VmMatchesTreeWalkOnRandomPrograms) {
  // The bytecode VM is the default language engine; the tree-walking
  // interpreter is the reference. Both share lang::Runtime for every
  // value-level operation, so over hundreds of seeded random programs the
  // printed output, the compiled circuit (QASM), and every diagnostic —
  // message text and source location — must be bit-identical.
  const std::size_t programs = sweep(220, 24);
  for (std::uint64_t seed = 0; seed < programs; ++seed) {
    const std::string source = qt::random_qutes_program(seed);
    const EngineOutcome vm = run_engine(source, qutes::ExecMode::Vm);
    const EngineOutcome ast = run_engine(source, qutes::ExecMode::Ast);
    ASSERT_EQ(vm.ok, ast.ok) << "seed=" << seed << "\nvm error: " << vm.error
                             << "\nast error: " << ast.error << "\nsource:\n"
                             << source;
    if (vm.ok) {
      EXPECT_EQ(vm.output, ast.output) << "seed=" << seed << "\nsource:\n" << source;
      EXPECT_EQ(vm.qasm, ast.qasm) << "seed=" << seed << "\nsource:\n" << source;
    } else {
      EXPECT_EQ(vm.error, ast.error) << "seed=" << seed << "\nsource:\n" << source;
    }
  }
}

// ---- harness plumbing ------------------------------------------------------

TEST(Harness, MinimizerLeavesPassingCircuitsAlone) {
  const circ::QuantumCircuit c = qt::random_circuit(5, unitary_options(5));
  const circ::QuantumCircuit kept =
      qt::minimize_failing_circuit(c, Backend::FusedExecutor, 1e-7);
  EXPECT_EQ(kept.size(), c.size());
}

TEST(Harness, ReportMergesAndSummarizes) {
  qt::DiffReport a;
  a.circuits = 2;
  a.comparisons = 16;
  qt::DiffReport b;
  b.circuits = 1;
  b.comparisons = 8;
  qt::DiffFailure f;
  f.seed = 42;
  f.backend = "preset-O1";
  f.detail = "synthetic";
  f.original_size = 10;
  f.minimized_size = 2;
  f.minimized_qasm = "OPENQASM 2.0;";
  b.failures.push_back(f);
  a.merge(std::move(b));
  EXPECT_EQ(a.circuits, 3u);
  EXPECT_EQ(a.comparisons, 24u);
  EXPECT_FALSE(a.ok());
  const std::string summary = a.summary();
  EXPECT_NE(summary.find("seed=42"), std::string::npos);
  EXPECT_NE(summary.find("preset-O1"), std::string::npos);
  EXPECT_NE(summary.find("2 of 10"), std::string::npos);
}

TEST(Harness, BackendNamesAreStable) {
  // CI failure lines print these; renaming one silently breaks triage docs.
  EXPECT_STREQ(qt::backend_name(Backend::Statevector), "statevector");
  EXPECT_STREQ(qt::backend_name(Backend::DensityMatrix), "density-matrix");
  EXPECT_STREQ(qt::backend_name(Backend::FusedExecutor), "fused-executor");
  EXPECT_STREQ(qt::backend_name(Backend::PresetO0), "preset-O0");
  EXPECT_STREQ(qt::backend_name(Backend::PresetO1), "preset-O1");
  EXPECT_STREQ(qt::backend_name(Backend::PresetBasis), "preset-basis");
  EXPECT_STREQ(qt::backend_name(Backend::PresetHardware), "preset-hardware");
  EXPECT_STREQ(qt::backend_name(Backend::QasmRoundTrip), "qasm-roundtrip");
  EXPECT_STREQ(qt::backend_name(Backend::Mps), "mps");
  EXPECT_STREQ(qt::backend_name(Backend::Stabilizer), "stabilizer");
  // The stabilizer lane is Clifford-only and opt-in, so the every-circuit
  // sweep set stays at nine.
  EXPECT_EQ(qt::all_backends().size(), 9u);
}
