// End-to-end tests over complete Qutes programs — the paper's Section 5
// showcases, run through the full pipeline (lex -> parse -> pass 1 ->
// interpret) and checked on their observable behaviour.
#include <gtest/gtest.h>

#include "qutes/circuit/qasm.hpp"
#include "qutes/lang/compiler.hpp"

namespace {

using namespace qutes;
using namespace qutes::lang;

std::string run(const std::string& source, std::uint64_t seed = 7) {
  qutes::RunConfig options;
  options.seed = seed;
  return run_source(source, options).output;
}

TEST(Programs, PaperShowcaseArithmetic) {
  // The paper's first listing shape: quantum vars, superposed vector,
  // addition, implicit measurement on print.
  const std::string source = R"(
    qubit q = |+>;
    quint a = 5q;
    quint b = [1, 3]q;
    quint sum = a + b;
    int sv = sum;
    int bv = b;
    print sv == 5 + bv;
  )";
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(run(source, seed), "true\n") << "seed " << seed;
  }
}

TEST(Programs, GroverShowcase) {
  const std::string source = R"(
    qustring text = "0110100"q;
    if ("101" in text) {
      print "found";
    } else {
      print "missing";
    }
  )";
  // The pattern occurs once; Grover finds it with high probability, so the
  // vast majority of seeds must print "found".
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (run(source, seed) == "found\n") ++found;
  }
  EXPECT_GE(found, 15);
}

TEST(Programs, DeutschJozsaShowcaseBalanced) {
  const std::string source = R"(
    void oracle(quint x, qubit y) {
      cx(x[0], y);
      cx(x[2], y);
    }
    quint<4> x = 0q;
    qubit y = |->;
    hadamard x;
    oracle(x, y);
    hadamard x;
    int v = x;
    if (v == 0) { print "constant"; } else { print "balanced"; }
  )";
  // Deterministic algorithm: every seed agrees.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(run(source, seed), "balanced\n");
  }
}

TEST(Programs, DeutschJozsaShowcaseConstant) {
  const std::string source = R"(
    void oracle(quint x, qubit y) { }
    quint<4> x = 0q;
    qubit y = |->;
    hadamard x;
    oracle(x, y);
    hadamard x;
    int v = x;
    if (v == 0) { print "constant"; } else { print "balanced"; }
  )";
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(run(source, seed), "constant\n");
  }
}

TEST(Programs, EntanglementSwapShowcase) {
  const std::string source = R"(
    qubit a = |0>;
    qubit b = |0>;
    qubit c = |0>;
    qubit d = |0>;
    bell(a, b);
    bell(c, d);
    cx(b, c);
    hadamard b;
    bool mz = b;
    bool mx = c;
    if (mx) { not d; }
    if (mz) { pauliz d; }
    bool va = a;
    bool vd = d;
    print va == vd;
  )";
  // Must hold on EVERY measurement branch.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    EXPECT_EQ(run(source, seed), "true\n") << "seed " << seed;
  }
}

TEST(Programs, CyclicShiftShowcase) {
  EXPECT_EQ(run("quint<8> y = 1q; y <<= 3; print y; y >>= 1; print y;"), "8\n4\n");
}

TEST(Programs, TeleportationViaLanguage) {
  // Full teleport written in Qutes with control flow corrections.
  const std::string source = R"(
    qubit msg = |1>;
    qubit alice = |0>;
    qubit bob = |0>;
    bell(alice, bob);
    cx(msg, alice);
    hadamard msg;
    bool m0 = msg;
    bool m1 = alice;
    if (m1) { not bob; }
    if (m0) { pauliz bob; }
    print bob;
  )";
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    EXPECT_EQ(run(source, seed), "true\n") << "seed " << seed;
  }
}

TEST(Programs, FunctionsOverQuantumState) {
  const std::string source = R"(
    void invert_register(quint x) {
      foreach b in x { not b; }
    }
    quint<4> v = 0q;
    invert_register(v);
    print v;
  )";
  EXPECT_EQ(run(source), "15\n");
}

TEST(Programs, QuantumCounterLoop) {
  const std::string source = R"(
    quint<4> counter = 0q;
    int i = 0;
    while (i < 5) {
      counter += 1;
      i += 1;
    }
    print counter;
  )";
  EXPECT_EQ(run(source), "5\n");
}

TEST(Programs, ArraysOfQubits) {
  const std::string source = R"(
    qubit[] qs = [|0>, |1>, |0>];
    not qs[0];
    print qs[0];
    print qs[1];
    print qs[2];
  )";
  EXPECT_EQ(run(source), "true\ntrue\nfalse\n");
}

TEST(Programs, QasmExportOfWholeProgram) {
  qutes::RunConfig options;
  options.seed = 4;
  const auto result = run_source(
      "quint<3> x = 5q; hadamard x; int v = x; print v;", options);
  const std::string qasm = circ::qasm::export_circuit(result.circuit);
  EXPECT_NE(qasm.find("qreg x[3];"), std::string::npos);
  EXPECT_NE(qasm.find("creg m[3];"), std::string::npos);
  // Export parses back.
  EXPECT_NO_THROW((void)circ::qasm::import_circuit(qasm));
}

TEST(Programs, ErrorsCarrySourceLocations) {
  try {
    (void)run("int x = 1;\nint y = z;\n");
    FAIL();
  } catch (const LangError& e) {
    EXPECT_EQ(e.location().line, 2u);
  }
}

TEST(Programs, StructuralErrorsFromPassOne) {
  EXPECT_THROW(run("if (true) { int f() { return 1; } }"), LangError);
  EXPECT_THROW(run("qustring s;"), LangError);
  EXPECT_THROW(run("int f(int a, int a) { return a; }"), LangError);
  EXPECT_THROW(run("int f() { return 1; } int f() { return 2; }"), LangError);
}

}  // namespace
