// Cyclic rotation (E3) and entanglement chain (E4) tests: permutation
// correctness on every basis state, the constant-vs-linear depth claim, and
// endpoint entanglement across chain lengths and measurement branches.
#include <gtest/gtest.h>

#include "qutes/algorithms/entanglement.hpp"
#include "qutes/algorithms/rotation.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

std::vector<std::size_t> iota(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

std::uint64_t run_on_basis(const circ::QuantumCircuit& c, std::uint64_t basis) {
  circ::QuantumCircuit prep(c.num_qubits());
  for (std::size_t q = 0; q < c.num_qubits(); ++q) {
    if (test_bit(basis, q)) prep.x(q);
  }
  std::vector<std::size_t> map = iota(c.num_qubits());
  prep.compose(c, map);
  circ::Executor ex({.shots = 1, .seed = 2});
  const auto traj = ex.run_single(prep);
  for (std::uint64_t i = 0; i < traj.state.dim(); ++i) {
    if (std::norm(traj.state.amplitude(i)) > 0.5) return i;
  }
  ADD_FAILURE() << "not a basis state";
  return 0;
}

std::uint64_t rotate_left_bits(std::uint64_t value, std::size_t n, std::size_t k) {
  // Bit i of the input must land on bit (i + k) mod n.
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (test_bit(value, i)) out = set_bit(out, (i + k) % n);
  }
  return out;
}

// ---- rotation --------------------------------------------------------------------

class RotationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RotationSweep, ConstantDepthMatchesPermutation) {
  const auto [n, k] = GetParam();
  circ::QuantumCircuit c(n);
  append_rotate_constant_depth(c, iota(n), k);
  for (std::uint64_t basis = 0; basis < dim_of(n); ++basis) {
    EXPECT_EQ(run_on_basis(c, basis), rotate_left_bits(basis, n, k))
        << "n=" << n << " k=" << k << " basis=" << basis;
  }
}

TEST_P(RotationSweep, LinearBaselineMatchesPermutation) {
  const auto [n, k] = GetParam();
  circ::QuantumCircuit c(n);
  append_rotate_linear_depth(c, iota(n), k);
  for (std::uint64_t basis = 0; basis < dim_of(n); ++basis) {
    EXPECT_EQ(run_on_basis(c, basis), rotate_left_bits(basis, n, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RotationSweep,
    ::testing::Values(std::make_tuple(2u, 1u), std::make_tuple(3u, 1u),
                      std::make_tuple(3u, 2u), std::make_tuple(4u, 1u),
                      std::make_tuple(4u, 2u), std::make_tuple(4u, 3u),
                      std::make_tuple(5u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(6u, 3u), std::make_tuple(6u, 5u)));

TEST(Rotation, RightInvertsLeft) {
  const std::size_t n = 5;
  for (std::size_t k = 0; k < n; ++k) {
    circ::QuantumCircuit c(n);
    append_rotate_constant_depth(c, iota(n), k);
    append_rotate_right_constant_depth(c, iota(n), k);
    for (std::uint64_t basis : {1ULL, 5ULL, 21ULL, 30ULL}) {
      EXPECT_EQ(run_on_basis(c, basis), basis);
    }
  }
}

TEST(Rotation, ZeroShiftIsEmpty) {
  circ::QuantumCircuit c(4);
  append_rotate_constant_depth(c, iota(4), 0);
  EXPECT_EQ(c.gate_count(), 0u);
  append_rotate_constant_depth(c, iota(4), 4);  // full turn
  EXPECT_EQ(c.gate_count(), 0u);
}

TEST(Rotation, ConstantDepthIsDepthTwoForAllSizes) {
  // The paper's claim (E3): depth independent of n.
  for (std::size_t n : {4u, 8u, 12u, 16u, 20u}) {
    circ::QuantumCircuit c(n);
    append_rotate_constant_depth(c, iota(n), n / 2 + 1);
    EXPECT_LE(c.depth(), 2u) << "n=" << n;
  }
}

TEST(Rotation, LinearBaselineDepthGrows) {
  std::size_t prev_depth = 0;
  for (std::size_t n : {4u, 8u, 16u}) {
    circ::QuantumCircuit c(n);
    append_rotate_linear_depth(c, iota(n), 1);
    EXPECT_EQ(c.depth(), n - 1) << "one pass of adjacent swaps";
    EXPECT_GT(c.depth(), prev_depth);
    prev_depth = c.depth();
  }
}

TEST(Rotation, PreservesSuperpositions) {
  // Rotation is a permutation: amplitudes move with the basis states.
  circ::QuantumCircuit c(3);
  c.h(0);  // (|000> + |001>)/sqrt2
  append_rotate_constant_depth(c, iota(3), 1);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  EXPECT_NEAR(std::norm(traj.state.amplitude(0b000)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(traj.state.amplitude(0b010)), 0.5, 1e-12);
}

TEST(Rotation, EmptyRegisterRejected) {
  circ::QuantumCircuit c(1);
  const std::vector<std::size_t> none;
  EXPECT_THROW(append_rotate_constant_depth(c, none, 1), Error);
}

// ---- entanglement chain ------------------------------------------------------------

TEST(Bell, PairHasUnitCorrelation) {
  circ::QuantumCircuit c(2);
  append_bell_pair(c, 0, 1);
  circ::Executor ex({.shots = 1, .seed = 1});
  const auto traj = ex.run_single(c);
  EXPECT_NEAR(traj.state.expectation_zz(0, 1), 1.0, 1e-12);
}

class ChainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainSweep, EndpointsBecomeBellAcrossSeeds) {
  const std::size_t links = GetParam();
  // Every Bell-measurement branch must produce a perfect endpoint pair:
  // try multiple seeds so different correction paths are exercised.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ChainResult result = run_entanglement_chain(links, seed);
    EXPECT_NEAR(result.zz_correlation, 1.0, 1e-9)
        << "links=" << links << " seed=" << seed;
    EXPECT_NEAR(result.bell_fidelity, 1.0, 1e-9)
        << "links=" << links << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(Chain, CircuitStructure) {
  const auto c = build_entanglement_chain_circuit(3);
  EXPECT_EQ(c.num_qubits(), 6u);
  EXPECT_EQ(c.num_clbits(), 4u);  // two bits per interior junction
  const auto counts = c.count_ops();
  EXPECT_EQ(counts.at("measure"), 4u);
  // Corrections are conditioned.
  std::size_t conditioned = 0;
  for (const auto& in : c.instructions()) {
    if (in.condition) ++conditioned;
  }
  EXPECT_EQ(conditioned, 4u);
}

TEST(Chain, SingleLinkIsJustABellPair) {
  const ChainResult result = run_entanglement_chain(1, 3);
  EXPECT_NEAR(result.bell_fidelity, 1.0, 1e-12);
  EXPECT_EQ(result.chain_qubits, 2u);
}

TEST(Chain, ZeroLinksRejected) {
  EXPECT_THROW((void)build_entanglement_chain_circuit(0), Error);
}

}  // namespace
