// Quantum counting and Simon's algorithm tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qutes/algorithms/counting.hpp"
#include "qutes/algorithms/grover.hpp"
#include "qutes/algorithms/oracles.hpp"
#include "qutes/algorithms/simon.hpp"
#include "qutes/circuit/executor.hpp"
#include "qutes/common/bitops.hpp"
#include "qutes/common/error.hpp"

namespace {

using namespace qutes;
using namespace qutes::algo;

// ---- controlled Grover iteration -----------------------------------------------

TEST(ControlledGrover, ControlOffIsIdentity) {
  circ::QuantumCircuit c;
  c.add_register("ctl", 1);
  c.add_register("q", 3);
  std::vector<std::size_t> qubits = {1, 2, 3};
  for (std::size_t q : qubits) c.h(q);
  circ::QuantumCircuit ref = c;

  const std::uint64_t marked[] = {5};
  append_controlled_grover_iteration(c, 0, qubits, marked);
  circ::Executor ex({.shots = 1, .seed = 1});
  EXPECT_NEAR(ex.run_single(c).state.fidelity(ex.run_single(ref).state), 1.0, 1e-9);
}

TEST(ControlledGrover, ControlOnMatchesPlainIteration) {
  // With the control in |1>, the controlled iteration must act exactly like
  // the plain oracle+diffusion (exact amplitudes — the Z correction makes
  // the phases match, not just the fidelity).
  circ::QuantumCircuit controlled;
  controlled.add_register("ctl", 1);
  controlled.add_register("q", 3);
  controlled.x(0);
  std::vector<std::size_t> qubits = {1, 2, 3};
  for (std::size_t q : qubits) controlled.h(q);
  const std::uint64_t marked[] = {3, 6};
  append_controlled_grover_iteration(controlled, 0, qubits, marked);

  circ::QuantumCircuit plain;
  plain.add_register("ctl", 1);
  plain.add_register("q", 3);
  plain.x(0);
  for (std::size_t q : qubits) plain.h(q);
  append_phase_oracle_values(plain, qubits, marked);
  append_diffusion(plain, qubits);
  // append_diffusion implements -(2|s><s| - I); the controlled version
  // corrects that sign (Z on the control), so match it with a global phase.
  plain.add_global_phase(M_PI);

  circ::Executor ex({.shots = 1, .seed = 1});
  const auto a = ex.run_single(controlled);
  const auto b = ex.run_single(plain);
  for (std::uint64_t i = 0; i < a.state.dim(); ++i) {
    EXPECT_NEAR(std::abs(a.state.amplitude(i) - b.state.amplitude(i)), 0.0, 1e-9)
        << "basis " << i;
  }
}

// ---- quantum counting --------------------------------------------------------------

class CountingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CountingSweep, EstimatesMarkedCount) {
  // n = 3 search qubits (N = 8), t = 5 counting bits; plant M marked states.
  const std::size_t m = GetParam();
  std::vector<std::uint64_t> marked;
  for (std::size_t i = 0; i < m; ++i) marked.push_back(i * 2 + 1);
  // QPE rounds the eigenphase to t bits and lands on a neighbour with
  // nontrivial probability: use the median over several shots.
  std::vector<double> estimates;
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    estimates.push_back(
        run_quantum_counting(3, marked, 5, 100 * seed + m).estimated_marked);
  }
  std::sort(estimates.begin(), estimates.end());
  EXPECT_NEAR(estimates[estimates.size() / 2], static_cast<double>(m), 0.8);
}

INSTANTIATE_TEST_SUITE_P(MarkedCounts, CountingSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Counting, ZeroMarkedGivesZero) {
  const std::vector<std::uint64_t> none;
  const CountingResult result = run_quantum_counting(3, none, 5, 3);
  EXPECT_NEAR(result.estimated_marked, 0.0, 0.4);
}

TEST(Counting, EstimateFeedsGroverIterationChoice) {
  // End-to-end: count M, derive the iteration count, run Grover with it.
  const std::uint64_t marked[] = {2, 5};
  const CountingResult counted = run_quantum_counting(3, marked, 5, 9);
  const auto m_hat = static_cast<std::uint64_t>(
      std::max(1.0, std::round(counted.estimated_marked)));
  const std::size_t iterations = optimal_grover_iterations(8, m_hat);
  const GroverResult grover = run_grover(3, marked, 4, iterations);
  EXPECT_GT(grover.success_probability, 0.6);
}

TEST(Counting, Validation) {
  const std::uint64_t marked[] = {0};
  EXPECT_THROW((void)build_counting_circuit(0, marked, 3), Error);
  EXPECT_THROW((void)build_counting_circuit(3, marked, 0), Error);
  const std::uint64_t bad[] = {99};
  circ::QuantumCircuit c(4);
  std::vector<std::size_t> qs = {1, 2, 3};
  EXPECT_THROW(append_controlled_grover_iteration(c, 0, qs, bad), Error);
}

// ---- GF(2) system ---------------------------------------------------------------------

TEST(Gf2, RankTracking) {
  Gf2System system;
  EXPECT_TRUE(system.add(0b101));
  EXPECT_TRUE(system.add(0b011));
  EXPECT_FALSE(system.add(0b110));  // = 101 ^ 011: dependent
  EXPECT_EQ(system.rank(), 2u);
  EXPECT_FALSE(system.add(0));
}

TEST(Gf2, NullspaceOfFullRankMinusOne) {
  Gf2System system;
  // Equations orthogonal to s = 0b110 over 3 bits: y in {000, 001, 110, 111}.
  system.add(0b001);
  system.add(0b110);
  const auto solutions = system.nullspace(3);
  ASSERT_EQ(solutions.size(), 1u);
  EXPECT_EQ(solutions[0], 0b110u);
}

// ---- Simon ---------------------------------------------------------------------------

TEST(Simon, SamplesAreOrthogonalToTheSecret) {
  const std::uint64_t secret = 0b101;
  const auto circuit = build_simon_circuit(3, secret);
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    circ::Executor ex({.shots = 1, .seed = rng()});
    const std::uint64_t y = ex.run_single(circuit).clbits & 7u;
    EXPECT_EQ(std::popcount(y & secret) % 2, 0) << "y=" << y;
  }
}

class SimonSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimonSweep, RecoversTheSecret) {
  const std::uint64_t secret = GetParam();
  const std::size_t n = bits_for(secret) < 3 ? 3 : bits_for(secret);
  const SimonResult result = run_simon(n, secret, secret * 13 + 7);
  EXPECT_TRUE(result.success) << "secret=" << secret;
  EXPECT_EQ(result.recovered, secret);
  // O(n) quantum queries — far below the 2^{n-1}+1 classical bound.
  EXPECT_LT(result.quantum_queries, 20 * n + 20);
}

INSTANTIATE_TEST_SUITE_P(Secrets, SimonSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 9u, 12u, 15u));

TEST(Simon, Validation) {
  EXPECT_THROW((void)build_simon_circuit(3, 0), Error);   // zero secret
  EXPECT_THROW((void)build_simon_circuit(3, 8), Error);   // doesn't fit
  EXPECT_THROW((void)build_simon_circuit(9, 1), Error);   // too wide
}

}  // namespace
