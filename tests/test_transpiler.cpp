// Transpiler tests: every lowering must preserve circuit semantics
// (state fidelity against the unlowered circuit), and the peephole
// optimizer must shrink without changing meaning.
#include <gtest/gtest.h>
// This file exercises the deprecated transpile()/route_linear() free
// functions on purpose (legacy-vs-pipeline equivalence); silence their
// deprecation warnings locally.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


#include <cmath>

#include "qutes/circuit/executor.hpp"
#include "qutes/circuit/transpiler.hpp"
#include "qutes/common/bitops.hpp"

namespace {

using namespace qutes;
using namespace qutes::circ;

/// Fidelity between the final states of two unitary circuits, padding the
/// narrower one with idle qubits (ancillas end in |0>, so padding is exact).
double circuit_fidelity(const QuantumCircuit& a, const QuantumCircuit& b) {
  const std::size_t n = std::max(a.num_qubits(), b.num_qubits());
  QuantumCircuit wa(n), wb(n);
  std::vector<std::size_t> map_a(a.num_qubits()), map_b(b.num_qubits());
  for (std::size_t i = 0; i < a.num_qubits(); ++i) map_a[i] = i;
  for (std::size_t i = 0; i < b.num_qubits(); ++i) map_b[i] = i;
  wa.compose(a, map_a);
  wb.compose(b, map_b);
  Executor ex({.shots = 1, .seed = 3});
  const auto ta = ex.run_single(wa);
  const auto tb = ex.run_single(wb);
  return ta.state.fidelity(tb.state);
}

/// A scrambled input layer so lowering bugs can't hide on |0...0>.
void scramble(QuantumCircuit& c) {
  for (std::size_t q = 0; q < c.num_qubits(); ++q) {
    c.ry(0.3 + 0.41 * static_cast<double>(q), q);
  }
}

TEST(Transpiler, McxSmallCasesLowerDirectly) {
  QuantumCircuit c(3);
  const std::size_t one[1] = {0};
  const std::size_t two[2] = {0, 1};
  c.mcx(one, 2);
  c.mcx(two, 2);
  const QuantumCircuit lowered = decompose_multicontrolled(c);
  EXPECT_EQ(lowered.num_qubits(), 3u);  // no ancillas needed
  const auto counts = lowered.count_ops();
  EXPECT_EQ(counts.at("cx"), 1u);
  EXPECT_EQ(counts.at("ccx"), 1u);
}

class McxLowering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McxLowering, VchainMatchesNative) {
  const std::size_t controls_count = GetParam();
  const std::size_t n = controls_count + 1;
  QuantumCircuit native(n);
  scramble(native);
  std::vector<std::size_t> controls(controls_count);
  for (std::size_t i = 0; i < controls_count; ++i) controls[i] = i;
  native.mcx(controls, n - 1);

  const QuantumCircuit lowered = decompose_multicontrolled(native);
  EXPECT_NEAR(circuit_fidelity(native, lowered), 1.0, 1e-9);
  // Linear Toffoli count: 2(k-2)+1 for k >= 3.
  if (controls_count >= 3) {
    EXPECT_EQ(lowered.count_ops().at("ccx"), 2 * (controls_count - 2) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, McxLowering,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u));

class MczLowering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MczLowering, MatchesNative) {
  const std::size_t k = GetParam();
  QuantumCircuit native(k + 1);
  scramble(native);
  std::vector<std::size_t> controls(k);
  for (std::size_t i = 0; i < k; ++i) controls[i] = i;
  native.mcz(controls, k);
  const QuantumCircuit lowered = decompose_multicontrolled(native);
  EXPECT_NEAR(circuit_fidelity(native, lowered), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, MczLowering,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class McpLowering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(McpLowering, MatchesNative) {
  const std::size_t k = GetParam();
  QuantumCircuit native(k + 1);
  scramble(native);
  std::vector<std::size_t> controls(k);
  for (std::size_t i = 0; i < k; ++i) controls[i] = i;
  native.mcp(0.917, controls, k);
  const QuantumCircuit lowered = decompose_multicontrolled(native);
  EXPECT_NEAR(circuit_fidelity(native, lowered), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, McpLowering,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Transpiler, CswapLowering) {
  QuantumCircuit native(3);
  scramble(native);
  native.cswap(0, 1, 2);
  const QuantumCircuit lowered = decompose_multicontrolled(native);
  EXPECT_NEAR(circuit_fidelity(native, lowered), 1.0, 1e-9);
  EXPECT_EQ(lowered.count_ops().count("cswap"), 0u);
}

// Full basis lowering: every gate type must survive {u, cx} reduction.
class BasisLowering : public ::testing::TestWithParam<int> {};

TEST_P(BasisLowering, PreservesSemantics) {
  QuantumCircuit c(3);
  scramble(c);
  switch (GetParam()) {
    case 0: c.h(0).s(1).t(2); break;
    case 1: c.x(0).y(1).z(2); break;
    case 2: c.sdg(0).tdg(1).sx(2); break;
    case 3: c.rx(0.3, 0).ry(0.7, 1).rz(1.9, 2); break;
    case 4: c.p(2.1, 0).u(0.3, 0.5, 0.7, 1); break;
    case 5: c.cx(0, 1).cy(1, 2).cz(0, 2); break;
    case 6: c.ch(0, 1).cp(0.4, 1, 2).crz(0.8, 0, 2); break;
    case 7: c.swap(0, 1).ccx(0, 1, 2); break;
    default: break;
  }
  const QuantumCircuit basis = decompose_to_basis(c);
  for (const Instruction& in : basis.instructions()) {
    EXPECT_TRUE(in.type == GateType::U || in.type == GateType::CX ||
                in.type == GateType::Barrier)
        << gate_name(in.type);
  }
  EXPECT_NEAR(circuit_fidelity(c, basis), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GateFamilies, BasisLowering, ::testing::Range(0, 8));

TEST(Optimizer, CancelsAdjacentSelfInverses) {
  QuantumCircuit c(2);
  c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1);
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 0u);
}

TEST(Optimizer, RespectsInterveningGates) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1).h(0);  // CX touches qubit 0: H's must NOT cancel
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 3u);
}

TEST(Optimizer, CancelsThroughSpectatorQubits) {
  QuantumCircuit c(2);
  c.h(0).x(1).h(0);  // X on qubit 1 does not block the H pair
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 1u);
  EXPECT_EQ(opt.instructions()[0].type, GateType::X);
}

TEST(Optimizer, FusesPhaseRotations) {
  QuantumCircuit c(1);
  c.p(0.4, 0).p(0.6, 0);
  const QuantumCircuit opt = optimize(c);
  ASSERT_EQ(opt.gate_count(), 1u);
  EXPECT_NEAR(opt.instructions()[0].params[0], 1.0, 1e-12);
}

TEST(Optimizer, DropsIdentityRotations) {
  QuantumCircuit c(1);
  c.p(0.0, 0).rz(2 * M_PI, 0).rx(0.0, 0);
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 0u);
}

TEST(Optimizer, FusedPairSummingToZeroVanishes) {
  QuantumCircuit c(1);
  c.p(0.9, 0).p(-0.9, 0);
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 0u);
}

TEST(Optimizer, CancelsSAndSdg) {
  QuantumCircuit c(1);
  c.s(0).sdg(0).t(0).tdg(0);
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 0u);
}

TEST(Optimizer, BarrierBlocksCancellation) {
  QuantumCircuit c(1);
  c.h(0);
  c.barrier();
  c.h(0);
  const QuantumCircuit opt = optimize(c);
  EXPECT_EQ(opt.gate_count(), 2u);
}

TEST(Optimizer, PreservesSemanticsOnDenseCircuit) {
  QuantumCircuit c(3);
  scramble(c);
  c.h(0).h(0).cx(0, 1).p(0.3, 2).p(-0.3, 2).cx(0, 1).t(1).tdg(1).swap(0, 2);
  const QuantumCircuit opt = optimize(c);
  EXPECT_LT(opt.gate_count(), c.gate_count());
  EXPECT_NEAR(circuit_fidelity(c, opt), 1.0, 1e-9);
}

TEST(Transpiler, PipelineRunsEndToEnd) {
  QuantumCircuit c(4);
  scramble(c);
  const std::size_t controls[3] = {0, 1, 2};
  c.mcx(controls, 3);
  c.h(0).h(0);
  TranspileOptions to_basis_opts;
  to_basis_opts.to_basis = true;
  const QuantumCircuit t = transpile(c, to_basis_opts);
  EXPECT_NEAR(circuit_fidelity(c, t), 1.0, 1e-9);
  for (const Instruction& in : t.instructions()) {
    EXPECT_TRUE(in.type == GateType::U || in.type == GateType::CX ||
                in.type == GateType::Barrier);
  }
}

}  // namespace
