#!/usr/bin/env python3
"""Validate a qutes --trace / --metrics-json export pair.

Usage: check_trace.py TRACE.json [METRICS.json] [--require SPAN ...]

Checks that TRACE.json is a well-formed Chrome-trace file (traceEvents of
complete "X" events with non-negative timestamps/durations, per-tid spans
properly nested) and that every --require'd span name appears. When a
metrics file is given, checks the flat {counters, gauges, histograms}
schema and the cross-invariants the runtime guarantees (shots counted,
histogram count/sum/min/max consistent). Exits non-zero with a message on
the first violation; prints a one-line summary on success.
"""
import json
import sys

EPS_US = 0.5  # absorbs double rounding of the ns clock


def fail(msg: str) -> None:
    print(f"check_trace.py: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, required: list[str]) -> int:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: no traceEvents array")
    events = doc["traceEvents"]
    if not events:
        fail(f"{path}: traceEvents is empty")
    by_tid: dict[int, list] = {}
    for e in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event missing '{key}': {e}")
        if e["ph"] != "X":
            fail(f"{path}: expected complete events (ph=X), got {e['ph']}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: negative ts/dur in {e}")
        by_tid.setdefault(e["tid"], []).append(e)

    # Per-thread spans must nest or be disjoint (laminar interval family).
    for tid, tevents in by_tid.items():
        tevents.sort(key=lambda e: (e["ts"], -e["dur"]))
        open_ends: list[float] = []
        for e in tevents:
            while open_ends and open_ends[-1] <= e["ts"] + EPS_US:
                open_ends.pop()
            end = e["ts"] + e["dur"]
            if open_ends and end > open_ends[-1] + EPS_US:
                fail(f"{path}: span '{e['name']}' (tid {tid}) straddles an "
                     f"enclosing span")
            open_ends.append(end)

    names = {e["name"] for e in events}
    for span in required:
        if span not in names:
            fail(f"{path}: required span '{span}' not present "
                 f"(have: {', '.join(sorted(names))})")
    return len(events)


def check_metrics(path: str) -> int:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing '{section}' object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} is not a non-negative integer")
    for name, h in doc["histograms"].items():
        for key in ("count", "sum", "min", "max"):
            if key not in h:
                fail(f"{path}: histogram {name} missing '{key}'")
        if h["count"] > 0 and not (h["min"] <= h["max"]):
            fail(f"{path}: histogram {name} has min > max")
        if h["count"] > 0 and not (
            h["count"] * h["min"] - 1e-9 <= h["sum"] <= h["count"] * h["max"] + 1e-9
        ):
            fail(f"{path}: histogram {name} sum outside [count*min, count*max]")
    return sum(len(doc[s]) for s in ("counters", "gauges", "histograms"))


def main(argv: list[str]) -> None:
    paths = []
    required = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--require":
            required.append(next(it, "") or fail("--require needs a span name"))
        else:
            paths.append(arg)
    if not paths:
        fail("usage: check_trace.py TRACE.json [METRICS.json] [--require SPAN ...]")
    n_events = check_trace(paths[0], required)
    n_instruments = check_metrics(paths[1]) if len(paths) > 1 else 0
    print(f"check_trace.py: OK: {paths[0]}: {n_events} well-nested events"
          + (f"; {paths[1]}: {n_instruments} instruments" if len(paths) > 1 else ""))


if __name__ == "__main__":
    main(sys.argv)
