#!/usr/bin/env bash
# Strict pre-merge gate: configure with -Wall -Wextra -Werror (QUTES_WERROR),
# build everything, and run the full tier-1 test suite. Uses its own build
# directory so it never perturbs the regular dev build.
#
# Modes (combinable with --quick):
#   (none)    -Werror build + full test suite in build-check/
#   --asan    AddressSanitizer build + full test suite in build-asan/
#   --ubsan   UndefinedBehaviorSanitizer build + full test suite in build-ubsan/
#   --native  -march=native build (QUTES_NATIVE=ON) + full test suite in
#             build-native/ — validates the tuned-for-this-machine
#             configuration the runtime-dispatch kernels normally make
#             unnecessary
#   --quick   scale the differential/fuzz sweeps down (QUTES_DIFF_QUICK=1)
#             for a fast smoke signal, e.g. `check.sh --asan --quick`
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

BUILD_DIR=build-check
SANITIZE=""
NATIVE=0
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --asan)  SANITIZE=address;   BUILD_DIR=build-asan ;;
    --ubsan) SANITIZE=undefined; BUILD_DIR=build-ubsan ;;
    --native) NATIVE=1;          BUILD_DIR=build-native ;;
    --quick) QUICK=1 ;;
    *) echo "usage: $0 [--asan|--ubsan|--native] [--quick]" >&2; exit 2 ;;
  esac
done
if [[ -n "$SANITIZE" && "$NATIVE" == 1 ]]; then
  echo "check.sh: --native cannot be combined with a sanitizer mode" >&2
  exit 2
fi

CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DQUTES_WERROR=ON)
if [[ "$NATIVE" == 1 ]]; then
  CMAKE_ARGS+=(-DQUTES_NATIVE=ON)
fi
if [[ -n "$SANITIZE" ]]; then
  CMAKE_ARGS+=(-DQUTES_SANITIZE="$SANITIZE")
  # Die on the first report: a sanitizer finding must fail the test, not
  # scroll past it.
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0:abort_on_error=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:abort_on_error=1"
fi
if [[ "$QUICK" == 1 ]]; then
  export QUTES_DIFF_QUICK=1
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Engine parity gate: the pass above ran every suite on the default engine
# (the bytecode VM); re-run the language-level suites on the tree-walk
# reference so both engines stay green under the same build (including the
# sanitizer configurations, where an engine-specific memory bug would hide
# if only one engine ever executed).
QUTES_EXEC_MODE=ast ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'test_(interpreter|programs|conformance|stdlib|bytecode|differential|dsl_robustness|program_files|edge_cases|debug_features|casting|printer)|cli_'
echo "check.sh: language suites passed under QUTES_EXEC_MODE=ast (tree-walk reference)."

# MPS backend smoke sweep: exercises the contraction/SVD kernels and the
# dense-vs-MPS crossover path in this build's instrumentation (most valuable
# under --asan/--ubsan, where the test binaries alone don't drive the bench
# workloads). Quick mode scales the widths/bond caps down.
QUTES_MPS_QUICK="$QUICK" "$BUILD_DIR"/bench/bench_mps --benchmark_filter='^$' >/dev/null
echo "check.sh: MPS backend smoke sweep completed."

# Stabilizer backend smoke sweep: drives the tableau column updates, the
# rank-update measurement path, and the dense-vs-stabilizer crossover under
# this build's instrumentation (the bit-packed word ops are exactly where
# ASan/UBSan would catch an out-of-bounds word index the tests' widths
# might miss). Always quick here; run_experiments.sh --stabilizer does the
# full-width sweep.
QUTES_STAB_QUICK=1 "$BUILD_DIR"/bench/bench_stabilizer --benchmark_filter='^$' >/dev/null
echo "check.sh: stabilizer backend smoke sweep completed."

# Variational smoke sweep: drives the parameter-shift gradient engine, the
# Adam minimize loop, the batched bind-before-run executor path, and the
# one-compile parameter sweep through the qutesd service (the bench asserts
# convergence, bit-identical batch counts, and compiles==1, so this is a
# correctness gate, not a timing). Always quick here — the bind/execute hot
# loops are exactly where ASan/UBSan would catch a stale param-table index.
QUTES_VARIATIONAL_QUICK=1 "$BUILD_DIR"/bench/bench_variational --benchmark_filter='^$' >/dev/null
echo "check.sh: variational smoke sweep completed."

# Observability smoke: a traced GHZ run through the CLI must produce a
# well-formed Chrome trace (per-thread span nesting) with spans from every
# layer, and a metrics snapshot whose schema/invariants hold.
OBS_DIR="$BUILD_DIR/obs-smoke"
mkdir -p "$OBS_DIR"
"$BUILD_DIR"/tools/qutes eval \
  "qubit a = |0>; qubit b = |0>; qubit c = |0>; ghz3(a, b, c); bool x = a; print x;" \
  --replay 50 --pipeline O1 \
  --trace "$OBS_DIR/trace.json" --metrics-json "$OBS_DIR/metrics.json" >/dev/null 2>&1
python3 scripts/check_trace.py "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" \
  --require lang.parse --require pipeline.run --require executor.run \
  --require backend.execute
echo "check.sh: observability trace/metrics smoke passed."

# qutesd daemon smoke: boot the daemon on a private socket, issue a
# cold/warm request pair through the CLI client (the warm one must report a
# cache hit), then SIGTERM and require a graceful exit that unlinks the
# socket and writes a metrics snapshot showing the hit. Exercises the whole
# socket server / compile cache / batched scheduler stack under this build's
# instrumentation (under --asan/--ubsan this is the only place the daemon
# threads run). The socket lives in /tmp: sun_path caps at ~107 bytes and a
# deep build tree could overflow it.
QUTESD_SOCK="/tmp/qutesd_check_$$.sock"
QUTESD_METRICS="$BUILD_DIR/obs-smoke/qutesd_metrics.json"
"$BUILD_DIR"/tools/qutesd --socket "$QUTESD_SOCK" \
  --metrics-json "$QUTESD_METRICS" >/dev/null 2>&1 &
QUTESD_PID=$!
for _ in $(seq 1 100); do
  [[ -S "$QUTESD_SOCK" ]] && break
  sleep 0.05
done
[[ -S "$QUTESD_SOCK" ]] || { echo "check.sh: qutesd did not come up" >&2; exit 1; }
COLD=$("$BUILD_DIR"/tools/qutes run examples/programs/ghz.qut \
  --connect "$QUTESD_SOCK" 2>&1 >/dev/null)
WARM=$("$BUILD_DIR"/tools/qutes run examples/programs/ghz.qut \
  --connect "$QUTESD_SOCK" 2>&1 >/dev/null)
grep -q 'cache miss' <<<"$COLD" || { echo "check.sh: expected a cold-cache miss, got: $COLD" >&2; exit 1; }
grep -q 'cache hit' <<<"$WARM" || { echo "check.sh: expected a warm-cache hit, got: $WARM" >&2; exit 1; }
kill -TERM "$QUTESD_PID"
wait "$QUTESD_PID" || { echo "check.sh: qutesd exited non-zero after SIGTERM" >&2; exit 1; }
[[ ! -e "$QUTESD_SOCK" ]] || { echo "check.sh: qutesd left its socket behind" >&2; exit 1; }
grep -q '"service.cache_hits": *1' "$QUTESD_METRICS" \
  || { echo "check.sh: qutesd metrics snapshot missing the cache hit" >&2; exit 1; }
echo "check.sh: qutesd daemon smoke passed (cold miss, warm hit, graceful drain)."

# Perf smoke: fused+reordered SIMD execution must beat the portable unfused
# path by a comfortable floor on a small brickwork circuit. Catches "the fast
# path silently fell back to scalar" regressions that correctness tests can't
# see. Skipped under sanitizers — instrumentation skews timings too much for
# a floor to be meaningful.
if [[ -z "$SANITIZE" ]]; then
  QUTES_PERF_SMOKE=1 "$BUILD_DIR"/bench/bench_simulator
  echo "check.sh: statevector perf smoke passed."
fi

echo
if [[ -n "$SANITIZE" ]]; then
  echo "check.sh: clean -fsanitize=$SANITIZE build and full test suite passed."
else
  echo "check.sh: clean -Werror build and full test suite passed."
fi
