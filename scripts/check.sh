#!/usr/bin/env bash
# Strict pre-merge gate: configure with -Wall -Wextra -Werror (QUTES_WERROR),
# build everything, and run the full tier-1 test suite. Uses its own build
# directory (build-check) so it never perturbs the regular dev build.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build-check -S . -DQUTES_WERROR=ON
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo
echo "check.sh: clean -Werror build and full test suite passed."
