#!/usr/bin/env bash
# Reproduce everything: configure, build, run the full test suite, and
# regenerate every experiment table (E1..E10). Outputs land in
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Done. See test_output.txt and bench_output.txt."
