#!/usr/bin/env bash
# Reproduce everything: configure, build, run the full test suite, and
# regenerate every experiment table (E1..E10). Outputs land in
# test_output.txt and bench_output.txt at the repository root, and the
# machine-readable gate-fusion comparison in BENCH_fusion.json.
#
# Pass --sanitizers to also run the quick differential smoke suite under
# ASan and UBSan (scripts/check.sh --asan/--ubsan --quick); the verdicts
# land in sanitizer_output.txt and are echoed in the final report.
#
# Pass --stabilizer to regenerate only the E15 stabilizer-backend tables
# (bench_stabilizer -> BENCH_stab.json) without rerunning the full suite.
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_SANITIZERS=0
STABILIZER_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --sanitizers) RUN_SANITIZERS=1 ;;
    --stabilizer) STABILIZER_ONLY=1 ;;
    *) echo "usage: $0 [--sanitizers] [--stabilizer]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

collect_stab_json() {
  # Collect the BENCH_JSON_STAB lines (one object per Clifford workload x
  # width, plus the dense-vs-stabilizer crossover rows, emitted by
  # bench_stabilizer) into a single JSON array.
  {
    echo '['
    { grep -h '^BENCH_JSON_STAB ' "$1" || true; } | sed 's/^BENCH_JSON_STAB //' | paste -sd, -
    echo ']'
  } > BENCH_stab.json
  echo "Stabilizer backend results recorded in BENCH_stab.json:"
  grep -o '"workload":"[a-z_]*","qubits":[0-9]*' BENCH_stab.json | sort -u | paste - - - - || true
}

if [[ "$STABILIZER_ONLY" == 1 ]]; then
  build/bench/bench_stabilizer 2>&1 | tee bench_stab_output.txt
  collect_stab_json bench_stab_output.txt
  echo "Done. See bench_stab_output.txt and BENCH_stab.json."
  exit 0
fi

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

# Collect the BENCH_JSON lines (one object per fusion workload, emitted by
# bench_simulator and bench_grover) into a single JSON array.
{
  echo '['
  { grep -h '^BENCH_JSON ' bench_output.txt || true; } | sed 's/^BENCH_JSON //' | paste -sd, -
  echo ']'
} > BENCH_fusion.json
echo "Fusion speedups recorded in BENCH_fusion.json:"
grep -o '"qubits":[0-9]*\|"speedup":[0-9.]*' BENCH_fusion.json | paste - - || true

# Collect the BENCH_JSON_TRANSPILE lines (one object per workload x preset,
# with the per-pass timing breakdown, emitted by bench_transpiler and
# bench_compiler) into a single JSON array.
{
  echo '['
  { grep -h '^BENCH_JSON_TRANSPILE ' bench_output.txt || true; } | sed 's/^BENCH_JSON_TRANSPILE //' | paste -sd, -
  echo ']'
} > BENCH_transpile.json
echo "Pipeline preset results recorded in BENCH_transpile.json:"
grep -o '"workload":"[a-z0-9]*","qubits":[0-9]*,"preset":"[a-z01A-Z]*"' BENCH_transpile.json || true

# Collect the BENCH_JSON_MPS lines (one object per workload x width x bond
# cap, plus the dense-vs-MPS crossover rows, emitted by bench_mps) into a
# single JSON array.
{
  echo '['
  { grep -h '^BENCH_JSON_MPS ' bench_output.txt || true; } | sed 's/^BENCH_JSON_MPS //' | paste -sd, -
  echo ']'
} > BENCH_mps.json
echo "MPS backend results recorded in BENCH_mps.json:"
grep -o '"workload":"[a-z]*","qubits":[0-9]*' BENCH_mps.json | sort -u | paste - - - - || true

collect_stab_json bench_output.txt

# Collect the BENCH_JSON_OBS lines (one metric-registry snapshot per
# executor workload, emitted by bench_simulator, bench_mps, and
# bench_stabilizer with metrics enabled; same names as the CLI's
# --metrics-json) into a single JSON array.
{
  echo '['
  { grep -h '^BENCH_JSON_OBS ' bench_output.txt || true; } | sed 's/^BENCH_JSON_OBS //' | paste -sd, -
  echo ']'
} > BENCH_obs.json
echo "Observability snapshots recorded in BENCH_obs.json:"
grep -o '"bench":"[a-z]*","workload":"[a-z]*","qubits":[0-9]*' BENCH_obs.json || true

# Collect the BENCH_JSON_LANG lines (one object per classical-heavy language
# workload: lowering cost, per-engine execute cost, VM-vs-tree-walk speedup,
# and the artifact-cache-hit cost, emitted by bench_lang) into a single JSON
# array.
{
  echo '['
  { grep -h '^BENCH_JSON_LANG ' bench_output.txt || true; } | sed 's/^BENCH_JSON_LANG //' | paste -sd, -
  echo ']'
} > BENCH_lang.json
echo "Language-engine results recorded in BENCH_lang.json:"
grep -o '"workload":"[a-z_]*"\|"speedup":[0-9.]*' BENCH_lang.json | paste - - || true

# Collect the BENCH_JSON_QUTESD lines (cold-vs-warm request latency,
# warm-cache throughput, and batched-vs-sequential shot-request rows,
# emitted by bench_qutesd) into a single JSON array.
{
  echo '['
  { grep -h '^BENCH_JSON_QUTESD ' bench_output.txt || true; } | sed 's/^BENCH_JSON_QUTESD //' | paste -sd, -
  echo ']'
} > BENCH_qutesd.json
echo "qutesd service results recorded in BENCH_qutesd.json:"
grep -o '"mode":"[a-z]*","workload":"[a-z0-9_]*"\|"speedup":[0-9.]*' BENCH_qutesd.json | paste - - || true

# Collect the BENCH_JSON_VARIATIONAL lines (optimizer-convergence rows,
# the batched-bind-vs-sequential comparison, and the one-compile parameter
# sweep through qutesd, emitted by bench_variational) into a single JSON
# array.
{
  echo '['
  { grep -h '^BENCH_JSON_VARIATIONAL ' bench_output.txt || true; } | sed 's/^BENCH_JSON_VARIATIONAL //' | paste -sd, -
  echo ']'
} > BENCH_variational.json
echo "Variational results recorded in BENCH_variational.json:"
grep -o '"mode":"[a-z_]*"\|"problem":"[a-z0-9_]*"\|"compiles":[0-9]*' BENCH_variational.json | paste - - || true

if [[ "$RUN_SANITIZERS" == 1 ]]; then
  : > sanitizer_output.txt
  for mode in asan ubsan; do
    echo "===== check.sh --$mode --quick =====" | tee -a sanitizer_output.txt
    if scripts/check.sh --"$mode" --quick >> sanitizer_output.txt 2>&1; then
      echo "SANITIZER $mode: PASS" | tee -a sanitizer_output.txt
    else
      echo "SANITIZER $mode: FAIL (see sanitizer_output.txt)" | tee -a sanitizer_output.txt
      exit 1
    fi
  done
fi

echo
echo "Done. See test_output.txt, bench_output.txt, BENCH_fusion.json, BENCH_transpile.json, BENCH_mps.json, BENCH_stab.json, BENCH_obs.json, BENCH_lang.json, BENCH_qutesd.json, and BENCH_variational.json."
if [[ "$RUN_SANITIZERS" == 1 ]]; then
  echo "Sanitizer verdicts:"
  grep '^SANITIZER ' sanitizer_output.txt
fi
